#include "mapping/heuristics.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "mapping/comparators.hpp"
#include "mapping/mapcost.hpp"
#include "simmpi/layout.hpp"
#include "topology/distance.hpp"

namespace tarr::mapping {
namespace {

using simmpi::LayoutSpec;
using simmpi::NodeOrder;
using simmpi::SocketOrder;
using simmpi::make_layout;
using topology::DistanceMatrix;
using topology::Machine;

struct Fixture {
  Machine machine;
  DistanceMatrix dist;
  explicit Fixture(int nodes)
      : machine(Machine::gpc(nodes)),
        dist(topology::extract_distances(machine)) {}

  std::vector<int> layout(int p, LayoutSpec spec = LayoutSpec{}) const {
    const auto cores = make_layout(machine, p, spec);
    return std::vector<int>(cores.begin(), cores.end());
  }
};

bool is_valid_mapping(const std::vector<int>& initial,
                      const std::vector<int>& result) {
  if (initial.size() != result.size()) return false;
  auto a = initial;
  auto b = result;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

/// Every heuristic over every pattern it supports must produce a
/// permutation of the initial slot set and keep rank 0 fixed.
class HeuristicValidity
    : public ::testing::TestWithParam<std::tuple<Pattern, int, int>> {};

TEST_P(HeuristicValidity, PermutationWithRankZeroFixed) {
  const auto [pattern, nodes, p] = GetParam();
  if (pattern == Pattern::RecursiveDoubling && !is_pow2(p)) GTEST_SKIP();
  Fixture f(nodes);
  if (p > f.machine.total_cores()) GTEST_SKIP();
  const auto initial =
      f.layout(p, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Scatter});
  Rng rng(17);
  const auto mapper = make_heuristic(pattern);
  const auto result = mapper->map(initial, f.dist, rng);
  EXPECT_TRUE(is_valid_mapping(initial, result)) << mapper->name();
  EXPECT_EQ(result[0], initial[0]) << "rank 0 must stay on its core";
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, HeuristicValidity,
    ::testing::Combine(::testing::Values(Pattern::RecursiveDoubling,
                                         Pattern::Ring,
                                         Pattern::BinomialBcast,
                                         Pattern::BinomialGather,
                                         Pattern::Bruck),
                       ::testing::Values(1, 2, 8),
                       ::testing::Values(1, 2, 3, 8, 15, 16, 61, 64)));

TEST(Rdmh, RejectsNonPow2) {
  Fixture f(1);
  Rng rng(1);
  RdmhMapper m;
  EXPECT_THROW(m.map(f.layout(6), f.dist, rng), Error);
}

TEST(Rdmh, SingleRankIsTrivial) {
  Fixture f(1);
  Rng rng(1);
  RdmhMapper m;
  EXPECT_EQ(m.map({3}, f.dist, rng), (std::vector<int>{3}));
}

TEST(Rdmh, LastStagePartnerLandsNextToRankZero) {
  // The first decision of Algorithm 2: rank p/2 is mapped as close as
  // possible to rank 0.
  Fixture f(8);
  const int p = 64;
  const auto initial =
      f.layout(p, LayoutSpec{NodeOrder::Block, SocketOrder::Bunch});
  Rng rng(5);
  RdmhMapper m;
  const auto result = m.map(initial, f.dist, rng);
  // With a block layout rank 0's socket has free cores, so the partner
  // must land on the same socket (distance == same_socket weight).
  EXPECT_EQ(f.dist.at(result[0], result[p / 2]),
            f.dist.at(initial[0], initial[1]));
}

TEST(Rdmh, ReducesWeightedCostOnBlockLayout) {
  Fixture f(8);
  const int p = 64;
  const auto initial = f.layout(p);
  const auto g = build_pattern_graph(Pattern::RecursiveDoubling, p);
  Rng rng(9);
  RdmhMapper m;
  const auto result = m.map(initial, f.dist, rng);
  EXPECT_LT(mapping_cost(g, result, f.dist), mapping_cost(g, initial, f.dist));
}

TEST(Rdmh, RefUpdatePeriodVariantsAreValid) {
  Fixture f(4);
  const auto initial = f.layout(32);
  for (int period : {1, 2, 4, 0 /* never */}) {
    Rng rng(3);
    RdmhMapper m(period);
    const auto result = m.map(initial, f.dist, rng);
    EXPECT_TRUE(is_valid_mapping(initial, result)) << "period " << period;
  }
}

TEST(Rmh, PreservesBlockBunchLayout) {
  // The paper's goal 2: an already-ideal layout must not degrade.  For the
  // ring pattern, block-bunch is ideal and RMH reproduces a layout whose
  // weighted cost is identical.
  Fixture f(4);
  const int p = 32;
  const auto initial =
      f.layout(p, LayoutSpec{NodeOrder::Block, SocketOrder::Bunch});
  const auto g = build_pattern_graph(Pattern::Ring, p);
  Rng rng(7);
  RmhMapper m;
  const auto result = m.map(initial, f.dist, rng);
  EXPECT_LE(mapping_cost(g, result, f.dist),
            mapping_cost(g, initial, f.dist) + 1e-9);
}

TEST(Rmh, RepairsCyclicLayout) {
  Fixture f(4);
  const int p = 32;
  const auto initial =
      f.layout(p, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Bunch});
  const auto g = build_pattern_graph(Pattern::Ring, p);
  Rng rng(7);
  RmhMapper m;
  const auto result = m.map(initial, f.dist, rng);
  EXPECT_LT(mapping_cost(g, result, f.dist),
            0.2 * mapping_cost(g, initial, f.dist));
}

TEST(Rmh, ConsecutiveRanksAreAdjacent) {
  Fixture f(2);
  const auto initial =
      f.layout(16, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Scatter});
  Rng rng(3);
  RmhMapper m;
  const auto result = m.map(initial, f.dist, rng);
  // Walking the ring, at most one node boundary per node: count inter-node
  // neighbor pairs; RMH should produce exactly nodes boundaries - 1 (open
  // chain), i.e. 1 for 2 nodes.
  int cross = 0;
  for (int i = 0; i + 1 < 16; ++i) {
    if (f.machine.node_of_core(result[i]) !=
        f.machine.node_of_core(result[i + 1]))
      ++cross;
  }
  EXPECT_EQ(cross, 1);
}

TEST(Bbmh, NoDegradationOnBunchInput) {
  // The paper's goal 2: a bunch layout is already ideal for the broadcast
  // tree; BBMH may permute within distance ties (ties are broken randomly)
  // but must not increase the weighted cost.
  Fixture f(1);
  const auto initial = f.layout(8, LayoutSpec{});
  const auto g = build_pattern_graph(Pattern::BinomialBcast, 8);
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng(seed);
    BbmhMapper m;
    const auto result = m.map(initial, f.dist, rng);
    EXPECT_LE(mapping_cost(g, result, f.dist),
              mapping_cost(g, initial, f.dist) + 1e-9)
        << "seed " << seed;
  }
}

TEST(Bbmh, TraversalVariantsAllValid) {
  Fixture f(4);
  const auto initial =
      f.layout(29, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Scatter});
  for (auto order : {BbmhTraversal::SmallSubtreeFirst,
                     BbmhTraversal::LargeSubtreeFirst,
                     BbmhTraversal::LevelOrder}) {
    Rng rng(11);
    BbmhMapper m(order);
    const auto result = m.map(initial, f.dist, rng);
    EXPECT_TRUE(is_valid_mapping(initial, result));
    EXPECT_EQ(result[0], initial[0]);
  }
}

TEST(Bbmh, ImprovesBlockScatterLayout) {
  // Fig 4's intra-node story: scattering a node's ranks over sockets breaks
  // the broadcast tree locality, and BBMH repairs it.
  Fixture f(2);
  const int p = 16;
  const auto initial =
      f.layout(p, LayoutSpec{NodeOrder::Block, SocketOrder::Scatter});
  const auto g = build_pattern_graph(Pattern::BinomialBcast, p);
  Rng rng(13);
  BbmhMapper m;
  const auto result = m.map(initial, f.dist, rng);
  EXPECT_LT(mapping_cost(g, result, f.dist), mapping_cost(g, initial, f.dist));
}

TEST(Bgmh, HeaviestEdgeMappedFirst) {
  // Rank p/2 (the root's heaviest child) must land as close to rank 0 as
  // the initial layout permits.
  Fixture f(1);
  const auto initial = f.layout(8, LayoutSpec{});
  Rng rng(3);
  BgmhMapper m;
  const auto result = m.map(initial, f.dist, rng);
  // Rank 4 ends on rank 0's socket (cores 0..3).
  EXPECT_EQ(f.machine.socket_of_core(result[4]),
            f.machine.socket_of_core(result[0]));
}

TEST(Bgmh, ImprovesGatherCostOnBlockScatter) {
  Fixture f(4);
  const int p = 32;
  const auto initial =
      f.layout(p, LayoutSpec{NodeOrder::Block, SocketOrder::Scatter});
  const auto g = build_pattern_graph(Pattern::BinomialGather, p);
  Rng rng(29);
  BgmhMapper m;
  const auto result = m.map(initial, f.dist, rng);
  EXPECT_LT(mapping_cost(g, result, f.dist), mapping_cost(g, initial, f.dist));
}

TEST(Bgmh, CyclicPlacementIsAlreadyTreeFriendly) {
  // A documented caveat: under a cyclic node placement the heavy
  // power-of-two-difference tree edges are intra-node *by construction*
  // (the same property that makes cyclic good for recursive doubling), so
  // a compact greedy repacking is not guaranteed to reduce the weighted
  // cost.  This is why the framework pairs each heuristic with its own
  // pattern and why §VII proposes an adaptive fallback.
  Fixture f(4);
  const int p = 32;
  const auto cyclic =
      f.layout(p, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Scatter});
  const auto g = build_pattern_graph(Pattern::BinomialGather, p);
  // The heavy root edge (0, 16) is indeed intra-node under cyclic.
  EXPECT_EQ(f.machine.node_of_core(cyclic[0]),
            f.machine.node_of_core(cyclic[16]));
  EXPECT_GT(mapping_cost(g, cyclic, f.dist), 0.0);
}

TEST(Bkmh, WorksForAnySize) {
  Fixture f(4);
  for (int p : {2, 3, 7, 12, 25, 32}) {
    const auto initial =
        f.layout(p, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Bunch});
    Rng rng(31);
    BkmhMapper m;
    const auto result = m.map(initial, f.dist, rng);
    EXPECT_TRUE(is_valid_mapping(initial, result)) << "p=" << p;
  }
}

TEST(Bkmh, ImprovesBruckCostOnCyclic) {
  Fixture f(4);
  const int p = 24;
  const auto initial =
      f.layout(p, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Bunch});
  const auto g = build_pattern_graph(Pattern::Bruck, p);
  Rng rng(37);
  BkmhMapper m;
  const auto result = m.map(initial, f.dist, rng);
  EXPECT_LT(mapping_cost(g, result, f.dist), mapping_cost(g, initial, f.dist));
}

TEST(Heuristics, DeterministicGivenSeed) {
  Fixture f(4);
  const auto initial =
      f.layout(32, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Scatter});
  for (auto pattern : {Pattern::RecursiveDoubling, Pattern::Ring,
                       Pattern::BinomialBcast, Pattern::BinomialGather,
                       Pattern::Bruck}) {
    Rng a(55), b(55);
    const auto mapper = make_heuristic(pattern);
    EXPECT_EQ(mapper->map(initial, f.dist, a),
              mapper->map(initial, f.dist, b));
  }
}

TEST(Heuristics, FactoryNames) {
  EXPECT_EQ(make_heuristic(Pattern::RecursiveDoubling)->name(), "RDMH");
  EXPECT_EQ(make_heuristic(Pattern::Ring)->name(), "RMH");
  EXPECT_EQ(make_heuristic(Pattern::BinomialBcast)->name(), "BBMH");
  EXPECT_EQ(make_heuristic(Pattern::BinomialGather)->name(), "BGMH");
  EXPECT_EQ(make_heuristic(Pattern::Bruck)->name(), "BKMH");
}

TEST(PatternNames, ToString) {
  EXPECT_STREQ(to_string(Pattern::RecursiveDoubling), "recursive-doubling");
  EXPECT_STREQ(to_string(Pattern::Ring), "ring");
  EXPECT_STREQ(to_string(Pattern::BinomialBcast), "binomial-bcast");
  EXPECT_STREQ(to_string(Pattern::BinomialGather), "binomial-gather");
  EXPECT_STREQ(to_string(Pattern::Bruck), "bruck");
}

}  // namespace
}  // namespace tarr::mapping
