#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "simmpi/layout.hpp"

namespace tarr::core {
namespace {

using collectives::OrderFix;
using simmpi::Communicator;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

struct World {
  Machine machine;
  ReorderFramework framework;
  explicit World(int nodes)
      : machine(Machine::gpc(nodes)), framework(machine) {}
  Communicator comm(int p, LayoutSpec spec = LayoutSpec{}) {
    return Communicator(machine, make_layout(machine, p, spec));
  }
};

std::vector<Bytes> probes() {
  return {64, 1024, 16 * 1024, 64 * 1024, 256 * 1024};
}

TEST(Adaptive, NeverSlowerThanEitherPath) {
  // The whole point of §VII's adaptive component: per message size it uses
  // whichever path the probe said is faster.
  World w(8);
  const auto comm = w.comm(64, LayoutSpec{});
  TopoAllgatherConfig variant;
  variant.mapper = MapperKind::Heuristic;
  variant.fix = OrderFix::InitComm;
  AdaptiveAllgather ad(w.framework, comm, variant, probes());

  TopoAllgatherConfig def;
  def.mapper = MapperKind::None;
  TopoAllgather d(w.framework, comm, def);
  TopoAllgather v(w.framework, comm, variant);

  for (Bytes msg : probes()) {
    const Usec t = ad.latency(msg);
    EXPECT_LE(t, d.latency(msg) * 1.0001);
    EXPECT_LE(t, v.latency(msg) * 1.0001);
  }
}

TEST(Adaptive, PicksReorderedWhereItWins) {
  // On a cyclic layout the heuristic wins across the board.
  World w(8);
  const auto comm = w.comm(
      64, LayoutSpec{simmpi::NodeOrder::Cyclic, simmpi::SocketOrder::Bunch});
  TopoAllgatherConfig variant;
  variant.mapper = MapperKind::Heuristic;
  variant.fix = OrderFix::InitComm;
  AdaptiveAllgather ad(w.framework, comm, variant, probes());
  EXPECT_TRUE(ad.use_reordered(256 * 1024));
}

TEST(Adaptive, FallsBackWhereReorderingCannotHelp) {
  // Block-bunch + ring regime: the default is already optimal, and the
  // reordered path carries initComm overhead — the adaptive layer must not
  // pick it.
  World w(8);
  const auto comm = w.comm(64, LayoutSpec{});
  TopoAllgatherConfig variant;
  variant.mapper = MapperKind::ScotchLike;  // known to degrade here
  variant.fix = OrderFix::InitComm;
  AdaptiveAllgather ad(w.framework, comm, variant, probes());
  EXPECT_FALSE(ad.use_reordered(256 * 1024));
}

TEST(Adaptive, NearestProbeSelection) {
  World w(4);
  const auto comm = w.comm(32, LayoutSpec{});
  TopoAllgatherConfig variant;
  variant.mapper = MapperKind::Heuristic;
  AdaptiveAllgather ad(w.framework, comm, variant, {1024, 64 * 1024});
  ASSERT_EQ(ad.decisions().size(), 2u);
  // A query close to a probe uses that probe's decision.
  EXPECT_EQ(ad.use_reordered(900), ad.decisions()[0]);
  EXPECT_EQ(ad.use_reordered(70 * 1024), ad.decisions()[1]);
}

TEST(Adaptive, RequiresVariantMapperAndProbes) {
  World w(2);
  const auto comm = w.comm(16, LayoutSpec{});
  TopoAllgatherConfig none;
  none.mapper = MapperKind::None;
  EXPECT_THROW(AdaptiveAllgather(w.framework, comm, none, probes()), Error);
  TopoAllgatherConfig variant;
  variant.mapper = MapperKind::Heuristic;
  EXPECT_THROW(AdaptiveAllgather(w.framework, comm, variant, {}), Error);
  EXPECT_THROW(AdaptiveAllgather(w.framework, comm, variant, {1024, 64}),
               Error);  // not ascending
}

}  // namespace
}  // namespace tarr::core
