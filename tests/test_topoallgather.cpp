#include "core/topoallgather.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "simmpi/layout.hpp"

namespace tarr::core {
namespace {

using collectives::IntraAlgo;
using collectives::OrderFix;
using simmpi::Communicator;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

struct World {
  Machine machine;
  ReorderFramework framework;
  explicit World(int nodes) : machine(Machine::gpc(nodes)),
                              framework(machine) {}

  Communicator comm(int p, LayoutSpec spec = LayoutSpec{}) {
    return Communicator(machine, make_layout(machine, p, spec));
  }
};

/// Parameter: (layout index, mapper, fix, hierarchical, intra).
using Param = std::tuple<int, MapperKind, OrderFix, bool, IntraAlgo>;

class TopoAllgatherMatrix : public ::testing::TestWithParam<Param> {};

TEST_P(TopoAllgatherMatrix, DataModeVerifiesEndToEnd) {
  const auto [layout_idx, mapper, fix, hier, intra] = GetParam();
  const LayoutSpec spec = simmpi::all_layouts()[layout_idx];
  if (hier && spec.node == simmpi::NodeOrder::Cyclic) GTEST_SKIP();
  World w(4);
  TopoAllgatherConfig cfg;
  cfg.mapper = mapper;
  cfg.fix = fix;
  cfg.hierarchical = hier;
  cfg.intra = intra;
  TopoAllgather ta(w.framework, w.comm(32, spec), cfg);
  // Exercise both selector regimes end to end with payload verification.
  EXPECT_GT(ta.run_and_check(512), 0.0);
  EXPECT_GT(ta.run_and_check(64 * 1024), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    FlatMappers, TopoAllgatherMatrix,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(MapperKind::None,
                                         MapperKind::Heuristic,
                                         MapperKind::ScotchLike,
                                         MapperKind::GreedyGraph,
                                         MapperKind::MvapichCyclic),
                       ::testing::Values(OrderFix::InitComm,
                                         OrderFix::EndShuffle),
                       ::testing::Values(false),
                       ::testing::Values(IntraAlgo::Binomial)));

INSTANTIATE_TEST_SUITE_P(
    Hierarchical, TopoAllgatherMatrix,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(MapperKind::None,
                                         MapperKind::Heuristic,
                                         MapperKind::ScotchLike),
                       ::testing::Values(OrderFix::InitComm,
                                         OrderFix::EndShuffle),
                       ::testing::Values(true),
                       ::testing::Values(IntraAlgo::Linear,
                                         IntraAlgo::Binomial)));

TEST(TopoAllgather, NoDegradationOnBlockBunchRing) {
  // Paper goal 2: on the ideal layout for the ring, the heuristic must not
  // be slower than the default.
  World w(8);
  TopoAllgatherConfig def;
  def.mapper = MapperKind::None;
  TopoAllgather d(w.framework, w.comm(64), def);
  TopoAllgatherConfig heu;
  heu.mapper = MapperKind::Heuristic;
  heu.fix = OrderFix::InitComm;
  TopoAllgather h(w.framework, w.comm(64), heu);
  const Bytes big = 256 * 1024;  // ring regime
  EXPECT_LE(h.latency(big), d.latency(big) * 1.0001);
}

TEST(TopoAllgather, HeuristicBeatsDefaultOnCyclicRing) {
  World w(8);
  const LayoutSpec cyclic{simmpi::NodeOrder::Cyclic,
                          simmpi::SocketOrder::Bunch};
  TopoAllgatherConfig def;
  def.mapper = MapperKind::None;
  TopoAllgather d(w.framework, w.comm(64, cyclic), def);
  TopoAllgatherConfig heu;
  heu.mapper = MapperKind::Heuristic;
  heu.fix = OrderFix::InitComm;
  TopoAllgather h(w.framework, w.comm(64, cyclic), heu);
  const Bytes big = 256 * 1024;
  EXPECT_LT(h.latency(big), d.latency(big));
}

TEST(TopoAllgather, ReorderHappensOncePerAlgorithm) {
  World w(4);
  TopoAllgatherConfig cfg;
  cfg.mapper = MapperKind::Heuristic;
  TopoAllgather ta(w.framework, w.comm(32), cfg);
  ta.latency(1024);  // recursive doubling regime
  const double after_first = ta.mapping_seconds();
  EXPECT_GT(after_first, 0.0);
  ta.latency(2048);
  ta.latency(4096);
  EXPECT_EQ(ta.mapping_seconds(), after_first);  // cached reorder
  ta.latency(256 * 1024);  // ring regime -> one more reorder
  EXPECT_GT(ta.mapping_seconds(), after_first);
}

TEST(TopoAllgather, ReorderedForSelectsByRegime) {
  World w(4);
  TopoAllgatherConfig cfg;
  cfg.mapper = MapperKind::Heuristic;
  TopoAllgather ta(w.framework, w.comm(32), cfg);
  const auto& small = ta.reordered_for(1024);
  const auto& large = ta.reordered_for(256 * 1024);
  // RDMH and RMH mappings differ on this layout.
  EXPECT_NE(small.comm.rank_to_core(), large.comm.rank_to_core());
}

TEST(TopoAllgather, BaselineUsesInternalCyclicReorderForRd) {
  // The MVAPICH-default baseline's RD path must behave like the cyclic
  // layout: on a block layout, default RD latency equals the latency the
  // same job would see under a cyclic initial layout.
  World w(8);
  TopoAllgatherConfig def;
  def.mapper = MapperKind::None;
  TopoAllgather block_default(w.framework, w.comm(64), def);
  TopoAllgather cyclic_default(
      w.framework,
      w.comm(64, LayoutSpec{simmpi::NodeOrder::Cyclic,
                            simmpi::SocketOrder::Bunch}),
      def);
  const Bytes small = 1024;  // RD regime
  EXPECT_NEAR(block_default.latency(small), cyclic_default.latency(small),
              0.02 * cyclic_default.latency(small));
}

TEST(TopoAllgather, MvapichCyclicHierarchicalRejected) {
  World w(2);
  TopoAllgatherConfig cfg;
  cfg.mapper = MapperKind::MvapichCyclic;
  cfg.hierarchical = true;
  EXPECT_THROW(TopoAllgather(w.framework, w.comm(16), cfg), Error);
}

TEST(TopoAllgather, ReorderedForRequiresMapper) {
  World w(2);
  TopoAllgatherConfig cfg;
  cfg.mapper = MapperKind::None;
  TopoAllgather ta(w.framework, w.comm(16), cfg);
  EXPECT_THROW(ta.reordered_for(1024), Error);
}

TEST(TopoAllgather, NonPow2FallsBackToBruck) {
  World w(3);
  TopoAllgatherConfig cfg;
  cfg.mapper = MapperKind::Heuristic;
  cfg.fix = OrderFix::InitComm;
  TopoAllgather ta(w.framework, w.comm(24), cfg);
  EXPECT_GT(ta.run_and_check(512), 0.0);      // Bruck regime
  EXPECT_GT(ta.run_and_check(64 * 1024), 0.0);  // ring regime
}

TEST(TopoAllgather, PipelinedHierarchicalVerifiesAndWins) {
  World w(8);
  TopoAllgatherConfig seq;
  seq.mapper = MapperKind::None;
  seq.hierarchical = true;
  TopoAllgather sequential(w.framework, w.comm(64), seq);

  TopoAllgatherConfig pipe = seq;
  pipe.pipelined = true;
  TopoAllgather pipelined(w.framework, w.comm(64), pipe);

  // Payload-verified in both regimes (RD regime falls back to sequential).
  EXPECT_GT(pipelined.run_and_check(512), 0.0);
  EXPECT_GT(pipelined.run_and_check(64 * 1024), 0.0);

  // In the ring regime the overlap must win; in the RD regime the two
  // configurations are identical.
  const Bytes large = 64 * 1024;
  EXPECT_LT(pipelined.latency(large), sequential.latency(large));
  const Bytes small = 512;
  EXPECT_DOUBLE_EQ(pipelined.latency(small), sequential.latency(small));
}

TEST(TopoAllgather, PipelinedWithReorderingVerifies) {
  World w(4);
  TopoAllgatherConfig cfg;
  cfg.mapper = MapperKind::Heuristic;
  cfg.fix = OrderFix::InitComm;
  cfg.hierarchical = true;
  cfg.pipelined = true;
  TopoAllgather ta(w.framework,
                   w.comm(32, LayoutSpec{simmpi::NodeOrder::Block,
                                         simmpi::SocketOrder::Scatter}),
                   cfg);
  EXPECT_GT(ta.run_and_check(64 * 1024), 0.0);
}

TEST(MapperKindNames, ToString) {
  EXPECT_STREQ(to_string(MapperKind::None), "default");
  EXPECT_STREQ(to_string(MapperKind::Heuristic), "Hrstc");
  EXPECT_STREQ(to_string(MapperKind::ScotchLike), "Scotch");
  EXPECT_STREQ(to_string(MapperKind::GreedyGraph), "Greedy");
  EXPECT_STREQ(to_string(MapperKind::MvapichCyclic), "MV-cyclic");
}

}  // namespace
}  // namespace tarr::core
