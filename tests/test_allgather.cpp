#include "collectives/allgather.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "collectives/orderfix.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"
#include "core/framework.hpp"
#include "simmpi/layout.hpp"

namespace tarr::collectives {
namespace {

using core::ReorderFramework;
using simmpi::Communicator;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

mapping::Pattern pattern_of(AllgatherAlgo a) {
  switch (a) {
    case AllgatherAlgo::RecursiveDoubling:
      return mapping::Pattern::RecursiveDoubling;
    case AllgatherAlgo::Ring:
      return mapping::Pattern::Ring;
    case AllgatherAlgo::Bruck:
      return mapping::Pattern::Bruck;
  }
  return mapping::Pattern::Ring;
}

/// Parameter: (algo, p, layout index, reorder?, fix).
using Param = std::tuple<AllgatherAlgo, int, int, bool, OrderFix>;

class AllgatherCorrectness : public ::testing::TestWithParam<Param> {};

TEST_P(AllgatherCorrectness, OutputInOriginalRankOrder) {
  const auto [algo, p, layout_idx, reorder, fix] = GetParam();
  const int nodes = std::max(1, (p + 7) / 8);
  const Machine m = Machine::gpc(nodes);
  if (p > m.total_cores()) GTEST_SKIP();
  const Communicator comm(
      m, make_layout(m, p, simmpi::all_layouts()[layout_idx]));

  Communicator use = comm;
  std::vector<Rank> oldrank = identity_permutation(p);
  if (reorder) {
    ReorderFramework fw(m);
    auto rc = fw.reorder(comm, pattern_of(algo));
    use = rc.comm;
    oldrank = rc.oldrank;
  }

  Engine eng(use, simmpi::CostConfig{}, ExecMode::Data, /*block=*/64, p);
  const Usec t = run_allgather(eng, AllgatherOptions{algo, fix}, oldrank);
  if (p > 1) {
    EXPECT_GT(t, 0.0);
  } else {
    EXPECT_GE(t, 0.0);
  }
  check_allgather_output(eng);
}

// Recursive doubling (power-of-two sizes) with every order-fix mechanism.
INSTANTIATE_TEST_SUITE_P(
    RecursiveDoubling, AllgatherCorrectness,
    ::testing::Combine(::testing::Values(AllgatherAlgo::RecursiveDoubling),
                       ::testing::Values(1, 2, 4, 8, 16, 32, 64),
                       ::testing::Values(0, 3),
                       ::testing::Values(true),
                       ::testing::Values(OrderFix::InitComm,
                                         OrderFix::EndShuffle)));

// Non-reordered RD needs no mechanism.
INSTANTIATE_TEST_SUITE_P(
    RecursiveDoublingIdentity, AllgatherCorrectness,
    ::testing::Combine(::testing::Values(AllgatherAlgo::RecursiveDoubling),
                       ::testing::Values(1, 2, 8, 32, 64),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(false),
                       ::testing::Values(OrderFix::None)));

// Ring fixes the order in place for any size and any reordering.
INSTANTIATE_TEST_SUITE_P(
    Ring, AllgatherCorrectness,
    ::testing::Combine(::testing::Values(AllgatherAlgo::Ring),
                       ::testing::Values(1, 2, 3, 5, 8, 13, 24, 48),
                       ::testing::Values(0, 2, 3),
                       ::testing::Values(false, true),
                       ::testing::Values(OrderFix::None)));

// Bruck folds the order fix into its final rotation, any size.
INSTANTIATE_TEST_SUITE_P(
    Bruck, AllgatherCorrectness,
    ::testing::Combine(::testing::Values(AllgatherAlgo::Bruck),
                       ::testing::Values(1, 2, 3, 6, 8, 15, 16, 31, 40),
                       ::testing::Values(0, 3),
                       ::testing::Values(false, true),
                       ::testing::Values(OrderFix::None)));

TEST(Allgather, RdRejectsNonPowerOfTwo) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 6, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, 6);
  EXPECT_THROW(run_allgather(
                   eng, AllgatherOptions{AllgatherAlgo::RecursiveDoubling,
                                         OrderFix::None}),
               Error);
}

TEST(Allgather, RejectsBadPermutation) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 4, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, 4);
  EXPECT_THROW(
      run_allgather(eng, AllgatherOptions{}, std::vector<Rank>{0, 0, 1, 2}),
      Error);
  EXPECT_THROW(run_allgather(eng, AllgatherOptions{}, std::vector<Rank>{0}),
               Error);
}

TEST(Allgather, TimedRingRepeatMatchesExplicitStages) {
  // The Timed-mode stage compression must account exactly the same time as
  // running all p-1 stages explicitly (Data mode prices stages identically).
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, LayoutSpec{}));
  const AllgatherOptions opts{AllgatherAlgo::Ring, OrderFix::None};

  Engine timed(comm, simmpi::CostConfig{}, ExecMode::Timed, 4096, 32);
  const Usec t_timed = run_allgather(timed, opts);

  Engine data(comm, simmpi::CostConfig{}, ExecMode::Data, 4096, 32);
  const Usec t_data = run_allgather(data, opts);

  EXPECT_NEAR(t_timed, t_data, 1e-9 * t_data);
}

TEST(Allgather, RdTimedMatchesData) {
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, LayoutSpec{}));
  const AllgatherOptions opts{AllgatherAlgo::RecursiveDoubling,
                              OrderFix::None};
  Engine timed(comm, simmpi::CostConfig{}, ExecMode::Timed, 512, 32);
  Engine data(comm, simmpi::CostConfig{}, ExecMode::Data, 512, 32);
  EXPECT_NEAR(run_allgather(timed, opts), run_allgather(data, opts), 1e-9);
}

TEST(Allgather, InitCommCostsMoreThanNone) {
  // The extra exchange must be accounted for whenever ranks moved.
  const Machine m = Machine::gpc(4);
  const Communicator comm(
      m, make_layout(m, 32,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Bunch}));
  ReorderFramework fw(m);
  const auto rc = fw.reorder(comm, mapping::Pattern::RecursiveDoubling);

  Engine with_fix(rc.comm, simmpi::CostConfig{}, ExecMode::Timed, 1024, 32);
  run_allgather(with_fix,
                AllgatherOptions{AllgatherAlgo::RecursiveDoubling,
                                 OrderFix::InitComm},
                rc.oldrank);

  Engine no_fix(rc.comm, simmpi::CostConfig{}, ExecMode::Timed, 1024, 32);
  run_allgather(no_fix,
                AllgatherOptions{AllgatherAlgo::RecursiveDoubling,
                                 OrderFix::None},
                rc.oldrank);
  EXPECT_GT(with_fix.total(), no_fix.total());
}

TEST(Allgather, VolumeScalesTime) {
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, LayoutSpec{}));
  const AllgatherOptions opts{AllgatherAlgo::Ring, OrderFix::None};
  Engine small(comm, simmpi::CostConfig{}, ExecMode::Timed, 1024, 32);
  Engine large(comm, simmpi::CostConfig{}, ExecMode::Timed, 64 * 1024, 32);
  EXPECT_GT(run_allgather(large, opts), run_allgather(small, opts));
}

}  // namespace
}  // namespace tarr::collectives
