#include "simmpi/async.hpp"

#include <gtest/gtest.h>

#include "collectives/allgather.hpp"
#include "common/error.hpp"
#include "core/framework.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"

namespace tarr::simmpi {
namespace {

using topology::Machine;

AsyncEngine make(const Communicator& c) {
  return AsyncEngine(c, CostConfig{});
}

TEST(AsyncEngine, ClocksStartAtZero) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 4, LayoutSpec{}));
  AsyncEngine eng = make(c);
  for (Rank r = 0; r < 4; ++r) EXPECT_EQ(eng.clock(r), 0.0);
  EXPECT_EQ(eng.makespan(), 0.0);
}

TEST(AsyncEngine, ComputeAdvancesOneClock) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 2, LayoutSpec{}));
  AsyncEngine eng = make(c);
  eng.compute(1, 10.0);
  EXPECT_EQ(eng.clock(0), 0.0);
  EXPECT_EQ(eng.clock(1), 10.0);
  EXPECT_EQ(eng.makespan(), 10.0);
}

TEST(AsyncEngine, P2pOrdersReceiverAfterSender) {
  const Machine m = Machine::gpc(2);
  const Communicator c(m, make_layout(m, 16, LayoutSpec{}));
  AsyncEngine eng = make(c);
  eng.compute(0, 100.0);
  const Usec arrive = eng.p2p(0, 8, 1024);  // inter-node
  EXPECT_GT(arrive, 100.0);
  EXPECT_EQ(eng.clock(8), arrive);
  // The sender is released before the message lands (overhead < latency).
  EXPECT_LT(eng.clock(0), arrive);
}

TEST(AsyncEngine, SendsSerializeAtTheSender) {
  const Machine m = Machine::gpc(2);
  const Communicator c(m, make_layout(m, 16, LayoutSpec{}));
  AsyncEngine eng = make(c);
  const Bytes b = 1 << 20;
  const Usec first = eng.p2p(0, 8, b);
  const Usec second = eng.p2p(0, 9, b);
  // The second departure waited for the first payload's serialization.
  EXPECT_GT(second - first, static_cast<double>(b) * 0.9 / 3200.0);
}

TEST(AsyncEngine, IntraNodeFasterThanInterNode) {
  const Machine m = Machine::gpc(2);
  const Communicator c(m, make_layout(m, 16, LayoutSpec{}));
  AsyncEngine a = make(c), b = make(c);
  const Usec shm = a.p2p(0, 1, 65536);
  const Usec net = b.p2p(0, 8, 65536);
  EXPECT_LT(shm, net);
}

TEST(AsyncEngine, InputValidation) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 2, LayoutSpec{}));
  AsyncEngine eng = make(c);
  EXPECT_THROW(eng.p2p(0, 0, 8), Error);
  EXPECT_THROW(eng.p2p(0, 5, 8), Error);
  EXPECT_THROW(eng.p2p(0, 1, -1), Error);
  EXPECT_THROW(eng.compute(0, -1.0), Error);
  EXPECT_THROW(eng.clock(9), Error);
}

TEST(AsyncCollectives, RingPipelinesBelowStageSynchronousBound) {
  // The whole point of the async model: the ring's makespan is below the
  // stage-synchronous sum (no global barrier per step), but not absurdly
  // so (>= the per-rank serial work).
  const Machine m = Machine::gpc(8);
  const int p = 64;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  const Bytes msg = 4096;

  AsyncEngine eng = make(comm);
  const Usec async = run_allgather_ring_async(eng, msg);
  EXPECT_EQ(eng.messages(), static_cast<long long>(p) * (p - 1));

  simmpi::CostConfig no_contention;
  no_contention.model_contention = false;
  Engine stage(comm, no_contention, ExecMode::Timed, msg, p);
  const Usec staged = collectives::run_allgather(
      stage,
      collectives::AllgatherOptions{collectives::AllgatherAlgo::Ring,
                                    collectives::OrderFix::None});
  EXPECT_LT(async, staged);
  EXPECT_GT(async, 0.25 * staged);
}

TEST(AsyncCollectives, RdMatchesStageSynchronousWithoutContention) {
  // Recursive doubling is globally synchronized: the async makespan must
  // land close to the stage-synchronous total when contention is off
  // (differences: send overhead and sender-side serialization).
  const Machine m = Machine::gpc(4);
  const int p = 32;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  const Bytes msg = 2048;

  AsyncEngine eng = make(comm);
  const Usec async = run_allgather_rd_async(eng, msg);

  simmpi::CostConfig no_contention;
  no_contention.model_contention = false;
  Engine stage(comm, no_contention, ExecMode::Timed, msg, p);
  const Usec staged = collectives::run_allgather(
      stage,
      collectives::AllgatherOptions{
          collectives::AllgatherAlgo::RecursiveDoubling,
          collectives::OrderFix::None});
  EXPECT_NEAR(async, staged, 0.5 * staged);
  EXPECT_GE(async, staged * 0.9);  // sync pattern cannot be much faster
}

TEST(AsyncCollectives, BcastDepthIsLogarithmic) {
  const Machine m = Machine::gpc(8);
  const Communicator comm(m, make_layout(m, 64, LayoutSpec{}));
  AsyncEngine eng = make(comm);
  const Usec t = run_bcast_binomial_async(eng, 1024);
  // 6 tree levels; each level costs at most one network hop.
  EXPECT_GT(t, 0.0);
  EXPECT_EQ(eng.messages(), 63);
}

TEST(AsyncCollectives, ReorderedCommunicatorReducesRingMakespan) {
  // The async model agrees with the paper's direction: RMH's compact ring
  // beats a cyclic placement's ring.
  const Machine m = Machine::gpc(8);
  const int p = 64;
  const Communicator cyclic(
      m, make_layout(m, p,
                     LayoutSpec{NodeOrder::Cyclic, SocketOrder::Bunch}));
  core::ReorderFramework fw(m);
  const auto rc = fw.reorder(cyclic, mapping::Pattern::Ring);

  AsyncEngine before = make(cyclic);
  AsyncEngine after = make(rc.comm);
  const Bytes msg = 64 * 1024;
  EXPECT_LT(run_allgather_ring_async(after, msg),
            run_allgather_ring_async(before, msg));
}

}  // namespace
}  // namespace tarr::simmpi
