// tarr::insight: histogram bucket exactness and merge algebra, imbalance
// analytics with EXPECT_EQ evidence against the traced record, the
// diagnosis engine on a congested fig8-style run (byte-identical across
// same-seed runs), and trajectory change-point detection.

#include "insight/insight.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "collectives/allgather.hpp"
#include "common/error.hpp"
#include "fault/degraded.hpp"
#include "probe/congestion.hpp"
#include "report/record.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"
#include "simmpi/transient.hpp"
#include "topology/fattree.hpp"
#include "trace/tracer.hpp"
#include "viz/findings.hpp"

namespace tarr::insight {
namespace {

using simmpi::Communicator;
using simmpi::CostConfig;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::make_layout;
using topology::Machine;

// ---------------------------------------------------------------------------
// Histogram

TEST(Histogram, BucketBoundariesRoundTrip) {
  const Histogram h;
  // Every bucket's lower bound must map back to that bucket — the exactness
  // the quantile guarantee rests on — across binades below and above 1.0.
  for (int idx = -5 * 32; idx <= 8 * 32; ++idx) {
    EXPECT_EQ(h.index_of(h.lower_bound(idx)), idx) << "index " << idx;
    EXPECT_LT(h.lower_bound(idx), h.upper_bound(idx));
  }
}

TEST(Histogram, QuantilesExactOnBucketAlignedFixture) {
  // Hand-built fixture: values on bucket lower bounds (dyadic rationals),
  // where the histogram nearest-rank quantile must EQUAL the brute-force
  // sorted nearest-rank — not approximately, exactly.
  Histogram h;
  std::vector<double> values;
  for (int e = -2; e <= 3; ++e)
    for (int k = 0; k < 32; k += 5) {
      const double v = std::ldexp(1.0 + k / 32.0, e - 1);
      values.push_back(v);
      h.record(v);
    }
  for (const auto& spec : kStandardQuantiles)
    EXPECT_EQ(h.quantile(spec.q), exact_quantile(values, spec.q))
        << spec.label;
  EXPECT_EQ(h.quantile(0.0), exact_quantile(values, 0.0));
  EXPECT_EQ(h.quantile(1.0), exact_quantile(values, 1.0));
  EXPECT_EQ(h.min(), exact_quantile(values, 0.0));
  EXPECT_EQ(h.max(), exact_quantile(values, 1.0));
}

TEST(Histogram, QuantileIsBucketFloorOfBruteForce) {
  // For arbitrary values the histogram quantile is the bucket lower bound
  // of the true nearest-rank value — a deterministic relation we can pin
  // exactly even off the bucket grid.
  Histogram h;
  std::vector<double> values;
  std::uint64_t state = 42;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double v =
        1e-3 + static_cast<double>(state >> 11) /
                   static_cast<double>(1ull << 53) * 1e4;
    values.push_back(v);
    h.record(v);
  }
  for (const auto& spec : kStandardQuantiles) {
    const double truth = exact_quantile(values, spec.q);
    EXPECT_EQ(h.quantile(spec.q), h.lower_bound(h.index_of(truth)))
        << spec.label;
    EXPECT_LE(h.quantile(spec.q), truth);
    EXPECT_GT(h.upper_bound(h.index_of(h.quantile(spec.q))), truth);
  }
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  // Three deterministic pseudo-random sample sets; the merge algebra must
  // be EXACT (operator== compares integer counts and exact min/max).
  auto build = [](std::uint64_t seed, int n) {
    Histogram h;
    std::uint64_t s = seed;
    for (int i = 0; i < n; ++i) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      h.record(static_cast<double>(s >> 40) / 256.0);
    }
    return h;
  };
  const Histogram a = build(1, 97), b = build(2, 131), c = build(3, 61);

  Histogram ab = a;
  ab.merge(b);
  Histogram ba = b;
  ba.merge(a);
  EXPECT_TRUE(ab == ba);  // commutative

  Histogram ab_c = ab;
  ab_c.merge(c);
  Histogram bc = b;
  bc.merge(c);
  Histogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_TRUE(ab_c == a_bc);  // associative
  // Derived statistics are merge-invariant too (pure functions of counts).
  EXPECT_EQ(ab_c.approx_sum(), a_bc.approx_sum());
  EXPECT_EQ(ab_c.quantile(0.99), a_bc.quantile(0.99));
}

TEST(Histogram, RecordNEqualsRepeatedRecord) {
  Histogram a, b;
  a.record_n(3.75, 5);
  a.record_n(0.0, 2);
  for (int i = 0; i < 5; ++i) b.record(3.75);
  for (int i = 0; i < 2; ++i) b.record(0.0);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.count(), 7);
  EXPECT_EQ(a.zero_count(), 2);
}

TEST(Histogram, RejectsNonFiniteAndNegative) {
  Histogram h;
  EXPECT_THROW(h.record(std::numeric_limits<double>::quiet_NaN()), Error);
  EXPECT_THROW(h.record(std::numeric_limits<double>::infinity()), Error);
  EXPECT_THROW(h.record(-1.0), Error);
  EXPECT_THROW(h.record_n(1.0, 0), Error);
  EXPECT_THROW(h.quantile(1.5), Error);
  Histogram coarse(2);
  EXPECT_THROW(coarse.merge(h), Error);  // resolution mismatch
  EXPECT_TRUE(h.empty());                // nothing was corrupted
}

// ---------------------------------------------------------------------------
// MetricsRegistry distributions + hardening

TEST(Metrics, RejectsNonFiniteCountsAndSamples) {
  trace::MetricsRegistry reg;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(reg.add_count("x", nan), Error);
  EXPECT_THROW(reg.add_count("x", inf), Error);
  EXPECT_THROW(reg.observe("d", nan), Error);
  EXPECT_THROW(reg.observe("d", -0.5), Error);
  EXPECT_TRUE(reg.empty());  // rejected input left no trace
  reg.add_count("x", 2.0);   // finite values still work
  reg.observe("d", 0.5);
  EXPECT_EQ(reg.count("x"), 2.0);
  ASSERT_NE(reg.distribution("d"), nullptr);
  EXPECT_EQ(reg.distribution("d")->count(), 1);
}

TEST(Metrics, DistributionRowsAppendAfterLegacyCategories) {
  trace::MetricsRegistry reg;
  reg.add_count("zz.last-counter", 1.0);
  const std::string before = reg.csv();
  reg.observe("stage.duration", 2.0);
  const std::string after = reg.csv();
  // Pre-existing rows are byte-unchanged: the old CSV is a prefix.
  EXPECT_EQ(after.compare(0, before.size(), before), 0);
  EXPECT_NE(after.find("\ndist,stage.duration,"), std::string::npos);
  EXPECT_NE(after.find("\ndist,stage.duration p99,"), std::string::npos);
  EXPECT_NE(after.find("\ndistbucket,stage.duration b"), std::string::npos);
  // distbucket rows come after all dist rows.
  EXPECT_LT(after.rfind("\ndist,"), after.find("\ndistbucket,"));
}

TEST(Metrics, TracedDistributionsAreByteIdenticalUnderFaults) {
  // Two same-seed runs under a transient-fault campaign: the full metrics
  // CSV — distribution rows included — must match byte for byte.
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  auto run = [&](trace::Tracer& tracer) {
    simmpi::TransientFaultConfig faults;
    faults.drop_prob = 0.2;
    faults.seed = 5;
    Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, 16);
    eng.set_transient_faults(faults);
    eng.set_trace_sink(&tracer);
    collectives::run_allgather(
        eng, {collectives::AllgatherAlgo::RecursiveDoubling,
              collectives::OrderFix::None});
  };
  trace::Tracer a, b;
  run(a);
  run(b);
  const std::string csv = a.metrics().csv();
  EXPECT_EQ(csv, b.metrics().csv());
  // The campaign actually exercised the retransmission split.
  EXPECT_NE(csv.find("dist,transfer.retransmission,"), std::string::npos);
  EXPECT_NE(csv.find("dist,stage.duration,"), std::string::npos);
}

TEST(Metrics, StageDurationQuantilesMatchBruteForceOnTracedRun) {
  // Collect per-execution stage durations straight from the record and
  // check the registry's histogram agrees with the brute-force sort at the
  // bucket-floor level (exactly — same relation as the fixture test).
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  trace::Tracer tracer;
  report::ScheduleRecorder recorder;
  trace::TeeSink tee(&tracer, &recorder);
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, 16);
  eng.set_trace_sink(&tee);
  collectives::run_allgather(
      eng, {collectives::AllgatherAlgo::Ring, collectives::OrderFix::None});
  const report::ScheduleRecord rec = recorder.take();

  std::vector<double> durations;
  for (const auto& s : rec.stages) {
    const double per_exec = s.duration / s.repeats;
    for (int i = 0; i < s.repeats; ++i) durations.push_back(per_exec);
  }
  const Histogram* h = tracer.metrics().distribution("stage.duration");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->count(), static_cast<long long>(durations.size()));
  for (const auto& spec : kStandardQuantiles) {
    const double truth = exact_quantile(durations, spec.q);
    EXPECT_EQ(h->quantile(spec.q),
              truth == 0.0 ? 0.0 : h->lower_bound(h->index_of(truth)))
        << spec.label;
  }
}

// ---------------------------------------------------------------------------
// Imbalance analytics

TEST(Imbalance, JainIndexKnownValues) {
  EXPECT_EQ(jain_index({}), 1.0);
  EXPECT_EQ(jain_index({5.0, 5.0, 5.0, 5.0}), 1.0);
  EXPECT_EQ(jain_index({8.0, 0.0, 0.0, 0.0}), 0.25);  // one hot resource
  EXPECT_NEAR(jain_index({4.0, 2.0}), 0.9, 1e-12);
}

TEST(Imbalance, ExactSumsMatchIndependentRecomputation) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  report::ScheduleRecorder recorder;
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 1024, 16);
  eng.set_trace_sink(&recorder);
  collectives::run_allgather(
      eng, {collectives::AllgatherAlgo::Ring, collectives::OrderFix::None});
  const report::ScheduleRecord rec = recorder.take();
  const ImbalanceReport rep = analyze_imbalance(rec);

  // Independent recomputation with a different data structure (maps keyed
  // by rank, stage loop over record.stages directly).
  std::map<Rank, double> busy;
  for (const auto& s : rec.stages) {
    std::map<Rank, double> stage_busy;
    for (const auto& t : rec.transfers_of(s)) {
      if (t.duration <= 0.0) continue;
      auto bump = [&](Rank r) {
        auto& b = stage_busy[r];
        if (t.duration > b) b = t.duration;
      };
      bump(t.src);
      bump(t.dst);
    }
    for (const auto& [r, b] : stage_busy)
      busy[r] += b * static_cast<double>(s.repeats);
  }
  ASSERT_FALSE(rep.ranks.empty());
  for (const auto& [r, b] : busy)
    EXPECT_EQ(rep.ranks[static_cast<std::size_t>(r)].busy, b) << "rank " << r;

  // Jain over cable loads EXPECT_EQ-matches the record's own aggregates.
  std::vector<double> loads;
  for (const auto& [key, bytes] : rec.link_bytes) loads.push_back(bytes);
  EXPECT_EQ(rep.jain_links, jain_index(loads));
  // Hot resources carry the exact aggregate bytes.
  for (const auto& h : rep.hot_resources) {
    if (h.qpi) continue;
    EXPECT_EQ(h.bytes, rec.link_bytes.at({h.id, h.dir}));
  }
}

// ---------------------------------------------------------------------------
// Diagnosis on a congested fig8-style run

struct CongestedRun {
  // Machine is move-only and DegradedTopology points at its base, so both
  // live behind stable addresses for the lifetime of the fixture.
  std::unique_ptr<Machine> base;
  std::unique_ptr<fault::DegradedTopology> topo;
  report::ScheduleRecord record;
  trace::MetricsRegistry metrics;
  const Machine& machine() const { return topo->machine(); }
};

CongestedRun congested_run() {
  CongestedRun run;
  // Right-sized fabric for the straggler scenario: wide host links (so
  // injection never bottlenecks) and capacity-2 leaf uplinks shared by the
  // 8 flows of each node-to-node ring hop.  Congestion pricing is
  // contention-only, so the fixture needs flows *sharing* a degradable
  // fabric link; a ring rank keeps the same neighbor in all 63 stages, so
  // a degraded uplink makes its ranks consistent stragglers.
  run.base = std::make_unique<Machine>(Machine(
      topology::NodeShape{},
      topology::build_gpc_network(
          8, {.num_leaves = 4, .nodes_per_leaf = 2, .num_cores = 1,
              .uplinks_per_core = 2, .lines_per_core = 1,
              .spines_per_core = 1, .leaves_per_line = 4,
              .host_link_capacity = 8})));
  const probe::CongestionConfig cong;  // seeded multi-tenant defaults
  // Epoch 3 (seed 7) congests some but not all leaf uplinks — the partial
  // degradation that separates stragglers from the median.
  run.topo = std::make_unique<fault::DegradedTopology>(
      *run.base,
      probe::congestion_mask(run.base->network(), cong, /*epoch=*/3));
  const fault::DegradedTopology& topo = *run.topo;
  const Communicator comm(
      topo.machine(),
      make_layout(topo.machine(), 64,
                  {simmpi::NodeOrder::Cyclic, simmpi::SocketOrder::Bunch}));
  report::ScheduleRecorder recorder;
  trace::TracerOptions topts;
  topts.timeline = false;
  trace::Tracer tracer(topts);
  trace::TeeSink tee(&tracer, &recorder);
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 16 * 1024, 64);
  eng.set_trace_sink(&tee);
  collectives::run_allgather(
      eng, {collectives::AllgatherAlgo::Ring, collectives::OrderFix::None});
  run.record = recorder.take();
  run.metrics = tracer.metrics();
  return run;
}

TEST(Diagnose, CongestedRunSurfacesImbalanceWithExactEvidence) {
  const CongestedRun run = congested_run();
  const Diagnosis d = diagnose(run.record, run.machine(), DiagnoseOptions{},
                               &run.metrics);
  // The seeded congestion must surface at least one straggler / imbalance
  // finding — the acceptance scenario of this subsystem.
  const Finding* found = nullptr;
  for (const auto& f : d.findings)
    if (f.kind == FindingKind::Straggler || f.kind == FindingKind::Imbalance)
      found = &f;
  ASSERT_NE(found, nullptr) << render_findings(d);
  EXPECT_GE(found->severity, Severity::Warning);

  // Every straggler evidence number EXPECT_EQ-matches the analytics.
  for (const auto& f : d.findings) {
    if (f.kind != FindingKind::Straggler) continue;
    for (const auto& ev : f.evidence) {
      if (ev.name.rfind("rank", 0) != 0) continue;
      const Rank r = std::atoi(ev.name.c_str() + 4);
      EXPECT_EQ(ev.value,
                d.imbalance.ranks[static_cast<std::size_t>(r)].busy)
          << ev.name;
    }
  }
  // Findings are ranked most-severe first.
  for (std::size_t i = 1; i < d.findings.size(); ++i)
    EXPECT_GE(d.findings[i - 1].severity, d.findings[i].severity);
}

TEST(Diagnose, SameSeedDiagnosesAreByteIdentical) {
  const CongestedRun a = congested_run();
  const CongestedRun b = congested_run();
  const Diagnosis da = diagnose(a.record, a.machine(), DiagnoseOptions{},
                                &a.metrics);
  const Diagnosis db = diagnose(b.record, b.machine(), DiagnoseOptions{},
                                &b.metrics);
  EXPECT_EQ(render_findings(da), render_findings(db));
  EXPECT_EQ(render_findings(da, report::RenderFormat::Markdown),
            render_findings(db, report::RenderFormat::Markdown));
  EXPECT_EQ(a.metrics.csv(), b.metrics.csv());
  EXPECT_EQ(viz::render_findings_section(da),
            viz::render_findings_section(db));
  EXPECT_FALSE(viz::render_findings_section(da).empty());
}

TEST(Diagnose, BalancedRunProducesNoStragglers) {
  // Four ranks on one socket: every ring hop costs the same, so the
  // conservative thresholds must stay quiet about stragglers.  (A whole
  // 8-core node is NOT balanced — the two cross-socket hops make the
  // boundary ranks real stragglers, which the congested test relies on.)
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 4, {}));
  report::ScheduleRecorder recorder;
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, 4);
  eng.set_trace_sink(&recorder);
  collectives::run_allgather(
      eng, {collectives::AllgatherAlgo::Ring, collectives::OrderFix::None});
  const Diagnosis d = diagnose(recorder.take(), m);
  for (const auto& f : d.findings)
    EXPECT_NE(f.kind, FindingKind::Straggler) << f.title;
}

TEST(Diagnose, SeverityParsingAndGating) {
  EXPECT_EQ(parse_severity("info"), Severity::Info);
  EXPECT_EQ(parse_severity("warning"), Severity::Warning);
  EXPECT_EQ(parse_severity("critical"), Severity::Critical);
  EXPECT_THROW(parse_severity("fatal"), Error);
  Diagnosis d;
  EXPECT_EQ(d.max_severity(), Severity::Info);
  EXPECT_FALSE(d.has_severity_at_least(Severity::Warning));
  d.findings.push_back({FindingKind::Imbalance, Severity::Warning, "", "", "",
                        {}});
  EXPECT_TRUE(d.has_severity_at_least(Severity::Warning));
  EXPECT_FALSE(d.has_severity_at_least(Severity::Critical));
}

// ---------------------------------------------------------------------------
// Trajectory change points

report::BenchSnapshot snap(const std::string& bench, double value,
                           bool gate = true) {
  report::BenchSnapshot s;
  s.bench = bench;
  s.metrics.push_back({"completion", value, "us",
                       /*higher_is_better=*/false, gate});
  return s;
}

TEST(ChangePoint, FlagsStepWithCommitWindow) {
  std::vector<SnapshotSet> sets;
  const double level[] = {100.0, 100.0, 110.0, 110.0};
  const char* labels[] = {"v1", "v2", "v3", "v4"};
  for (int i = 0; i < 4; ++i)
    sets.push_back({labels[i], {snap("fig3", level[i])}});
  const auto points = detect_change_points(sets);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].bench, "fig3");
  EXPECT_EQ(points[0].metric, "completion");
  EXPECT_EQ(points[0].index, 2);
  EXPECT_EQ(points[0].before_label, "v2");
  EXPECT_EQ(points[0].after_label, "v3");
  EXPECT_EQ(points[0].before, 100.0);
  EXPECT_EQ(points[0].after, 110.0);
  EXPECT_TRUE(points[0].regression);  // lower-is-better metric went up
  const std::string rendered = render_change_points(points);
  EXPECT_NE(rendered.find("'v2' and 'v3'"), std::string::npos);
  EXPECT_NE(rendered.find("REGRESSION"), std::string::npos);
  EXPECT_EQ(rendered.find("no change points"), std::string::npos);
}

TEST(ChangePoint, ImprovementDirectionAndGatedOnly) {
  std::vector<SnapshotSet> sets;
  // A drop in a lower-is-better metric is an improvement, not a regression;
  // an ungated metric's step is ignored under gated_only.
  for (int i = 0; i < 3; ++i) {
    report::BenchSnapshot s = snap("fig5", i < 1 ? 100.0 : 50.0);
    s.metrics.push_back({"wall", i < 1 ? 1.0 : 9.0, "seconds", false,
                         /*gate=*/false});
    sets.push_back({"s" + std::to_string(i), {s}});
  }
  const auto points = detect_change_points(sets);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].metric, "completion");
  EXPECT_FALSE(points[0].regression);
  ChangePointOptions all;
  all.gated_only = false;
  EXPECT_EQ(detect_change_points(sets, all).size(), 2u);
}

TEST(ChangePoint, JitterWithinToleranceIsQuiet) {
  std::vector<SnapshotSet> sets;
  const double level[] = {100.0, 101.0, 99.5, 100.2, 100.0};
  for (int i = 0; i < 5; ++i)
    sets.push_back({"s" + std::to_string(i), {snap("fig3", level[i])}});
  const auto points = detect_change_points(sets);
  EXPECT_TRUE(points.empty());
  EXPECT_NE(render_change_points(points).find("no change points"),
            std::string::npos);
  // The CI negative control: the same set twice can never step.
  std::vector<SnapshotSet> twice = {{"a", {snap("fig3", 123.0)}},
                                    {"b", {snap("fig3", 123.0)}}};
  EXPECT_TRUE(detect_change_points(twice).empty());
}

}  // namespace
}  // namespace tarr::insight
