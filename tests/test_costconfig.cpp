// Property tests over the cost-model configuration: simulated latencies
// must respond monotonically to every physical parameter (slower hardware
// can never make a collective faster), and the calibration identities
// documented in docs/MODEL.md must hold.

#include <gtest/gtest.h>

#include "collectives/allgather.hpp"
#include "collectives/hierarchical.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"

namespace tarr::simmpi {
namespace {

using topology::Machine;

Usec ring_latency(const Communicator& comm, const CostConfig& cfg,
                  Bytes msg) {
  Engine eng(comm, cfg, ExecMode::Timed, msg, comm.size());
  return collectives::run_allgather(
      eng, collectives::AllgatherOptions{collectives::AllgatherAlgo::Ring,
                                         collectives::OrderFix::None});
}

Usec rd_latency(const Communicator& comm, const CostConfig& cfg, Bytes msg) {
  Engine eng(comm, cfg, ExecMode::Timed, msg, comm.size());
  return collectives::run_allgather(
      eng,
      collectives::AllgatherOptions{
          collectives::AllgatherAlgo::RecursiveDoubling,
          collectives::OrderFix::None});
}

struct Knob {
  const char* name;
  double CostConfig::* field;
};

class CostKnobs : public ::testing::TestWithParam<int> {
 protected:
  static const Knob& knob() {
    static const Knob knobs[] = {
        {"alpha_shm_socket", &CostConfig::alpha_shm_socket},
        {"alpha_shm_cross", &CostConfig::alpha_shm_cross},
        {"alpha_shm_complex", &CostConfig::alpha_shm_complex},
        {"beta_shm_pair", &CostConfig::beta_shm_pair},
        {"beta_shm_complex_pair", &CostConfig::beta_shm_complex_pair},
        {"beta_mem_socket", &CostConfig::beta_mem_socket},
        {"beta_qpi", &CostConfig::beta_qpi},
        {"alpha_net", &CostConfig::alpha_net},
        {"alpha_hop", &CostConfig::alpha_hop},
        {"beta_net", &CostConfig::beta_net},
        {"alpha_mem", &CostConfig::alpha_mem},
        {"beta_mem", &CostConfig::beta_mem},
    };
    return knobs[GetParam()];
  }
  public:
  static constexpr int kNumKnobs = 12;
};

TEST_P(CostKnobs, SlowerHardwareNeverSpeedsUpCollectives) {
  const Machine m = Machine::gpc(4);
  const Communicator block(m, make_layout(m, 32, LayoutSpec{}));
  const Communicator cyclic(
      m, make_layout(m, 32,
                     LayoutSpec{NodeOrder::Cyclic, SocketOrder::Scatter}));

  CostConfig base;
  CostConfig slowed = base;
  slowed.*(knob().field) = (base.*(knob().field)) * 4.0;

  for (const Communicator* comm : {&block, &cyclic}) {
    for (Bytes msg : {Bytes(64), Bytes(64 * 1024)}) {
      EXPECT_LE(ring_latency(*comm, base, msg),
                ring_latency(*comm, slowed, msg) + 1e-9)
          << knob().name;
      EXPECT_LE(rd_latency(*comm, base, msg),
                rd_latency(*comm, slowed, msg) + 1e-9)
          << knob().name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKnobs, CostKnobs,
                         ::testing::Range(0, CostKnobs::kNumKnobs));

TEST(CostCalibration, QpiMatchesTwoSocketAggregate) {
  // docs/MODEL.md constraint 2: beta_qpi ~ beta_mem_socket / 2, so a stage
  // of four same-direction cross-socket copies prices like a stage of four
  // same-socket-pair copies.
  const CostConfig cfg;
  EXPECT_NEAR(cfg.beta_qpi, cfg.beta_mem_socket / 2.0,
              0.05 * cfg.beta_qpi);

  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 8, LayoutSpec{}));
  const Bytes b = 1 << 20;
  // All-cross stage: sources 0..3 (socket 0) to 4..7 (socket 1).
  Engine cross(comm, cfg, ExecMode::Timed, b, 1);
  cross.begin_stage();
  for (int k = 0; k < 4; ++k) cross.copy(k, 0, 4 + k, 0, 1);
  const Usec t_cross = cross.end_stage();
  // All-same stage: pairs within each socket.
  Engine same(comm, cfg, ExecMode::Timed, b, 1);
  same.begin_stage();
  same.copy(0, 0, 1, 0, 1);
  same.copy(2, 0, 3, 0, 1);
  same.copy(4, 0, 5, 0, 1);
  same.copy(6, 0, 7, 0, 1);
  const Usec t_same = same.end_stage();
  EXPECT_NEAR(t_cross, t_same, 0.1 * t_same);
}

TEST(CostCalibration, IsolatedCopiesMemoryBound) {
  // docs/MODEL.md constraint 1: a lone cross-socket copy streams about as
  // fast as a lone same-socket copy.
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 8, LayoutSpec{}));
  const CostConfig cfg;
  const Bytes b = 1 << 22;
  Engine a(comm, cfg, ExecMode::Timed, b, 1);
  a.begin_stage();
  a.copy(0, 0, 1, 0, 1);
  const Usec same = a.end_stage();
  Engine c(comm, cfg, ExecMode::Timed, b, 1);
  c.begin_stage();
  c.copy(0, 0, 4, 0, 1);
  const Usec cross = c.end_stage();
  EXPECT_NEAR(same, cross, 0.15 * same);
}

}  // namespace
}  // namespace tarr::simmpi
