#include "fault/fault_mask.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "topology/fattree.hpp"
#include "topology/routing.hpp"

namespace tarr::fault {
namespace {

using topology::Router;
using topology::SwitchGraph;
using topology::VertexKind;
using topology::build_gpc_network;
using topology::build_single_switch_network;
using topology::build_two_level_fattree;

TEST(FaultMask, EmptyMaskReproducesGraphExactly) {
  const SwitchGraph g = build_gpc_network(60);
  const SwitchGraph d = FaultMask{}.apply(g);
  ASSERT_EQ(d.num_vertices(), g.num_vertices());
  ASSERT_EQ(d.num_links(), g.num_links());
  for (NetVertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(d.vertex(v).kind, g.vertex(v).kind);
    EXPECT_EQ(d.vertex(v).node, g.vertex(v).node);
  }
  for (LinkId l = 0; l < g.num_links(); ++l) {
    EXPECT_EQ(d.link(l).a, g.link(l).a);
    EXPECT_EQ(d.link(l).b, g.link(l).b);
    EXPECT_EQ(d.link(l).capacity, g.link(l).capacity);
  }
}

TEST(FaultMask, EmptyMaskYieldsIdenticalRoutes) {
  const SwitchGraph g = build_gpc_network(90);
  const SwitchGraph d = FaultMask{}.apply(g);
  const Router r1(g), r2(d);
  for (NodeId a = 0; a < 90; a += 7) {
    for (NodeId b = 0; b < 90; b += 11) {
      const auto p1 = r1.path(a, b);
      const auto p2 = r2.path(a, b);
      ASSERT_EQ(p1.size(), p2.size());
      for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i], p2[i]);
    }
  }
}

TEST(FaultMask, BuilderAccessorsAndIdempotence) {
  FaultMask m;
  EXPECT_TRUE(m.empty());
  m.fail_link(3).fail_link(1).fail_link(3).fail_node(2).degrade_link(5, 1);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.failed_links(), (std::vector<LinkId>{1, 3}));
  EXPECT_EQ(m.failed_nodes(), (std::vector<NodeId>{2}));
  EXPECT_TRUE(m.node_failed(2));
  EXPECT_FALSE(m.node_failed(1));
  EXPECT_EQ(m.num_failures(), 3);  // degradations are not failures
  EXPECT_NE(m.describe().find("2 links"), std::string::npos);
}

TEST(FaultMask, FailLinkRemovesExactlyThatLink) {
  const SwitchGraph g = build_two_level_fattree(8, 4, 2);
  const SwitchGraph d = FaultMask{}.fail_link(0).apply(g);
  EXPECT_EQ(d.num_links(), g.num_links() - 1);
  // Surviving links keep endpoints/capacity in original order.
  for (LinkId l = 0; l < d.num_links(); ++l) {
    EXPECT_EQ(d.link(l).a, g.link(l + 1).a);
    EXPECT_EQ(d.link(l).b, g.link(l + 1).b);
    EXPECT_EQ(d.link(l).capacity, g.link(l + 1).capacity);
  }
}

TEST(FaultMask, FailoverReroutesOntoSurvivingShortestPath) {
  // Two spines: cutting the leaf->spine link a route uses must reroute via
  // the other spine at the same length.
  const SwitchGraph g = build_two_level_fattree(8, 4, 2);
  const Router before(g);
  const auto path = before.path(0, 7);  // crosses leaves
  ASSERT_EQ(path.size(), 4u);
  // path[1] is the leaf->spine uplink chosen for this destination.
  const SwitchGraph d = FaultMask{}.fail_link(path[1]).apply(g);
  const Router after(d);
  EXPECT_TRUE(after.fully_connected());
  EXPECT_EQ(after.hops(0, 7), 4);
  // The degraded route is valid hop by hop.
  NetVertexId at = d.host_vertex(0);
  for (LinkId l : after.path(0, 7)) at = d.other_end(l, at);
  EXPECT_EQ(at, d.host_vertex(7));
}

TEST(FaultMask, DegradeLinkReducesCapacity) {
  const SwitchGraph g = build_gpc_network(60);
  // Find an aggregated leaf->core uplink (capacity 3).
  LinkId uplink = -1;
  for (LinkId l = 0; l < g.num_links(); ++l)
    if (g.link(l).capacity == 3) {
      uplink = l;
      break;
    }
  ASSERT_GE(uplink, 0);
  const SwitchGraph d = FaultMask{}.degrade_link(uplink, 1).apply(g);
  EXPECT_EQ(d.link(uplink).capacity, 1);
  EXPECT_EQ(d.num_links(), g.num_links());
}

TEST(FaultMask, DegradeFactorScalesCapacityWithFloorOfOne) {
  const SwitchGraph g = build_gpc_network(60);
  LinkId uplink = -1;
  for (LinkId l = 0; l < g.num_links(); ++l)
    if (g.link(l).capacity == 3) {
      uplink = l;
      break;
    }
  ASSERT_GE(uplink, 0);
  // capacity 3 * 0.5 -> 1 (truncated), * 1.0 -> unchanged, tiny -> floor 1.
  EXPECT_EQ(FaultMask{}.degrade_link_factor(uplink, 0.5).apply(g)
                .link(uplink).capacity, 1);
  EXPECT_EQ(FaultMask{}.degrade_link_factor(uplink, 1.0).apply(g)
                .link(uplink).capacity, 3);
  EXPECT_EQ(FaultMask{}.degrade_link_factor(uplink, 0.01).apply(g)
                .link(uplink).capacity, 1);
}

TEST(FaultMask, DegradeFactorRejectsNonFiniteAndOutOfRange) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(FaultMask{}.degrade_link_factor(0, nan), Error);
  EXPECT_THROW(FaultMask{}.degrade_link_factor(0, inf), Error);
  EXPECT_THROW(FaultMask{}.degrade_link_factor(0, -inf), Error);
  EXPECT_THROW(FaultMask{}.degrade_link_factor(0, 0.0), Error);
  EXPECT_THROW(FaultMask{}.degrade_link_factor(0, -0.5), Error);
  EXPECT_THROW(FaultMask{}.degrade_link_factor(0, 1.5), Error);
  EXPECT_THROW(FaultMask{}.degrade_link_factor(-1, 0.5), Error);
}

TEST(FaultMask, DegradeSameLinkTwiceRejectedAcrossBothModes) {
  EXPECT_THROW(FaultMask{}.degrade_link(4, 2).degrade_link_factor(4, 0.5),
               Error);
  EXPECT_THROW(FaultMask{}.degrade_link_factor(4, 0.5).degrade_link(4, 2),
               Error);
}

TEST(FaultMask, DegradeBeyondCapacityThrows) {
  const SwitchGraph g = build_single_switch_network(2);  // capacity-1 links
  EXPECT_THROW(FaultMask{}.degrade_link(0, 2).apply(g), Error);
  EXPECT_THROW(FaultMask{}.degrade_link(0, 0), Error);
}

TEST(FaultMask, FailSwitchDropsAllIncidentLinks) {
  const SwitchGraph g = build_single_switch_network(4);
  const SwitchGraph d = FaultMask{}.fail_switch(0).apply(g);  // the xbar
  EXPECT_EQ(d.num_links(), 0);
  const auto parts = topology::host_components(d);
  EXPECT_EQ(parts.components.size(), 4u);
  EXPECT_THROW(Router{d}, topology::PartitionedError);
}

TEST(FaultMask, FailSwitchOnHostVertexRejected) {
  const SwitchGraph g = build_single_switch_network(2);
  // Vertex 1 is node 0's host endpoint.
  ASSERT_EQ(g.vertex(1).kind, VertexKind::Host);
  EXPECT_THROW(FaultMask{}.fail_switch(1).apply(g), Error);
}

TEST(FaultMask, FailNodeIsolatesOnlyThatHost) {
  const SwitchGraph g = build_two_level_fattree(8, 4, 2);
  const SwitchGraph d = FaultMask{}.fail_node(3).apply(g);
  EXPECT_TRUE(d.incident(d.host_vertex(3)).empty());
  const Router r(d, Router::HostPolicy::AllowUnreachable);
  EXPECT_FALSE(r.reachable(0, 3));
  EXPECT_TRUE(r.reachable(0, 7));
  EXPECT_EQ(r.hops(0, 7), 4);
}

TEST(FaultMask, OutOfRangeIdsRejected) {
  const SwitchGraph g = build_single_switch_network(2);
  EXPECT_THROW(FaultMask{}.fail_link(99).apply(g), Error);
  EXPECT_THROW(FaultMask{}.fail_switch(99).apply(g), Error);
  EXPECT_THROW(FaultMask{}.fail_node(99).apply(g), Error);
  EXPECT_THROW(FaultMask{}.degrade_link(99, 1).apply(g), Error);
  EXPECT_THROW(FaultMask{}.fail_link(-1), Error);
  EXPECT_THROW(FaultMask{}.fail_node(-1), Error);
}

TEST(FaultMask, RandomLinksDeterministicAndHostSparing) {
  const SwitchGraph g = build_gpc_network(90);
  Rng a(7), b(7);
  const FaultMask ma = FaultMask::random_links(g, 5, a);
  const FaultMask mb = FaultMask::random_links(g, 5, b);
  EXPECT_EQ(ma.failed_links(), mb.failed_links());
  EXPECT_EQ(ma.failed_links().size(), 5u);
  for (LinkId l : ma.failed_links()) {
    const auto& ln = g.link(l);
    EXPECT_NE(g.vertex(ln.a).kind, VertexKind::Host);
    EXPECT_NE(g.vertex(ln.b).kind, VertexKind::Host);
  }
}

TEST(FaultMask, RandomLinksCanIncludeHostLinks) {
  // A single-switch network has only host links: without the opt-in flag
  // there is nothing to sample.
  const SwitchGraph g = build_single_switch_network(8);
  Rng rng(3);
  EXPECT_THROW(FaultMask::random_links(g, 1, rng), Error);
  const FaultMask m = FaultMask::random_links(g, 3, rng, true);
  EXPECT_EQ(m.failed_links().size(), 3u);
}

TEST(FaultMask, RandomNodesSamplesDistinctNodes) {
  const SwitchGraph g = build_single_switch_network(10);
  Rng rng(11);
  const FaultMask m = FaultMask::random_nodes(g, 4, rng);
  EXPECT_EQ(m.failed_nodes().size(), 4u);
  const std::set<NodeId> unique(m.failed_nodes().begin(),
                                m.failed_nodes().end());
  EXPECT_EQ(unique.size(), 4u);
  Rng rng2(11);
  EXPECT_THROW(FaultMask::random_nodes(g, 11, rng2), Error);
}

}  // namespace
}  // namespace tarr::fault
