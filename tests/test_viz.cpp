// tarr::viz: the dashboard renderer's structural contracts — well-formed
// single-file HTML, byte-identical output across same-seed runs, topology
// heatmaps that copy the recorded per-link/per-QPI counters exactly
// (EXPECT_EQ, no tolerance), communication-matrix byte conservation, trend
// flagging, and the empty-record / single-rank edge cases.

#include "viz/dashboard.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "collectives/allgather.hpp"
#include "common/permutation.hpp"
#include "core/framework.hpp"
#include "report/critical_path.hpp"
#include "report/record.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"
#include "viz/html.hpp"
#include "viz/matrix.hpp"
#include "viz/timeline.hpp"
#include "viz/topo.hpp"
#include "viz/trend.hpp"

namespace tarr::viz {
namespace {

using simmpi::Communicator;
using simmpi::CostConfig;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::make_layout;
using topology::Machine;

// ---------------------------------------------------------------------------
// A small HTML well-formedness checker: every open tag is closed in order.
// The viz output contains no scripts and escapes every attribute/text, so
// scanning for '<'/'>' is exact (neither can appear in content).

void expect_well_formed(const std::string& html) {
  static const std::set<std::string> kVoid = {
      "area", "base", "br",   "col",  "embed",  "hr",
      "img",  "input", "link", "meta", "source", "track", "wbr"};
  std::vector<std::string> stack;
  std::size_t i = 0;
  while ((i = html.find('<', i)) != std::string::npos) {
    if (html.compare(i, 4, "<!--") == 0) {
      i = html.find("-->", i);
      ASSERT_NE(i, std::string::npos) << "unterminated comment";
      i += 3;
      continue;
    }
    if (html[i + 1] == '!') {  // doctype
      i = html.find('>', i);
      ASSERT_NE(i, std::string::npos);
      continue;
    }
    const bool closing = html[i + 1] == '/';
    std::size_t j = i + (closing ? 2 : 1);
    std::size_t k = j;
    while (k < html.size() &&
           std::isalnum(static_cast<unsigned char>(html[k])))
      ++k;
    const std::string name = html.substr(j, k - j);
    ASSERT_FALSE(name.empty()) << "stray '<' at offset " << i;
    const std::size_t end = html.find('>', k);
    ASSERT_NE(end, std::string::npos) << "unterminated tag <" << name;
    const bool self_closing = html[end - 1] == '/';
    if (closing) {
      ASSERT_FALSE(stack.empty()) << "closing </" << name << "> with no open";
      EXPECT_EQ(stack.back(), name) << "mismatched close at offset " << i;
      stack.pop_back();
    } else if (!self_closing && kVoid.find(name) == kVoid.end()) {
      stack.push_back(name);
    }
    i = end + 1;
  }
  EXPECT_TRUE(stack.empty())
      << "unclosed <" << (stack.empty() ? "" : stack.back()) << ">";
}

/// Record one ring allgather over `comm` (identity order restore).
report::ScheduleRecord record_ring(const Communicator& comm,
                                   Bytes block = 1024) {
  report::ScheduleRecorder rec;
  Engine eng(comm, CostConfig{}, ExecMode::Timed, block, comm.size());
  eng.set_trace_sink(&rec);
  collectives::run_allgather(
      eng, {collectives::AllgatherAlgo::Ring, collectives::OrderFix::None},
      identity_permutation(comm.size()));
  return rec.take();
}

/// One baseline + reordered pair over a fresh machine, as the CLI builds it.
struct Pair {
  Machine machine;
  report::ScheduleRecord baseline;
  report::ScheduleRecord candidate;
};

Pair make_pair(std::uint64_t seed) {
  Machine machine = Machine::gpc(2);
  const simmpi::LayoutSpec cyclic{simmpi::NodeOrder::Cyclic,
                                  simmpi::SocketOrder::Bunch};
  const Communicator comm(machine, make_layout(machine, 16, cyclic));
  core::ReorderFramework::Options fopts;
  fopts.seed = seed;
  core::ReorderFramework fw(machine, fopts);
  const core::ReorderedComm rc = fw.reorder(comm, mapping::Pattern::Ring);
  report::ScheduleRecord baseline = record_ring(comm);
  report::ScheduleRecord candidate = record_ring(rc.comm);
  return Pair{std::move(machine), std::move(baseline), std::move(candidate)};
}

report::BenchSnapshot sample_snapshot(double latency) {
  report::BenchSnapshot s;
  s.bench = "fig3_nonhier";
  s.config = "smoke";
  s.metrics.push_back({"latency_us", latency, "us", false, true});
  s.metrics.push_back({"improvement", 30.0, "percent", true, true});
  return s;
}

// ---------------------------------------------------------------------------
// Formatting and palette primitives.

TEST(Html, FormattersAreDeterministicAndLocaleFree) {
  EXPECT_EQ(fmt(42.0), "42");
  EXPECT_EQ(fmt(-3.0), "-3");
  EXPECT_EQ(fmt(1.5), "1.5");
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_bytes(768), "768 B");
  EXPECT_EQ(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
  EXPECT_EQ(escape_attr("\"x'\""), "&quot;x&#39;&quot;");
}

TEST(Html, SequentialAndDivergingScalesClamp) {
  EXPECT_EQ(seq_color(-1.0), seq_color(0.0));
  EXPECT_EQ(seq_color(2.0), seq_color(1.0));
  EXPECT_EQ(div_color(0.0), div_color(0.0));
  EXPECT_NE(div_color(-1.0), div_color(1.0));
  // Categorical slots are fixed and never cycled: past the palette the
  // caller gets the explicit gray fallback, not a reused hue.
  EXPECT_STRNE(series_color(0), series_color(7));
  EXPECT_STREQ(series_color(8), series_color(100));
}

TEST(Html, PageAndChartPrimitivesAreWellFormed) {
  Page page("unit & test <page>");
  LineChartOptions opts;
  opts.y_label = "latency (us)";
  std::string body = line_chart(
      "two series", {"a", "b", "c"},
      {{"base & co", {1.0, 2.0, 3.0}, 0}, {"cand", {3.0, 2.0, 1.0}, 1}},
      opts);
  body += collapsible("values <raw>",
                      data_table({"x", "y"}, {{"a", "1"}, {"<b>", "2&3"}}));
  body += seq_legend(0.0, 1024.0, /*as_bytes=*/true);
  body += div_legend("relieved", "newly loaded");
  page.add_section("Charts & tables", "intro with <angles>", body);
  const std::string html = page.html();
  expect_well_formed(html);
  // Escapes reached the output; raw angle brackets from user text did not.
  EXPECT_NE(html.find("&lt;page&gt;"), std::string::npos);
  EXPECT_EQ(html.find("<page>"), std::string::npos);
  EXPECT_EQ(html.find("<raw>"), std::string::npos);
  EXPECT_EQ(html.find("<b>"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Topology heatmap: exact counter copy.

TEST(Topo, HeatmapCopiesRecordedCountersExactly) {
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, {}));
  const report::ScheduleRecord rec = record_ring(comm);
  ASSERT_FALSE(rec.link_bytes.empty());  // a 4-node ring crosses the network

  const TopoHeatmap heat = build_topo_heatmap(m, rec);
  ASSERT_EQ(heat.links.size(),
            static_cast<std::size_t>(m.network().num_links()));
  ASSERT_EQ(heat.nodes.size(), static_cast<std::size_t>(m.num_nodes()));

  // Every recorded counter appears verbatim (bit-exact, no re-derivation).
  for (const auto& [key, bytes] : rec.link_bytes) {
    ASSERT_LT(static_cast<std::size_t>(key.first), heat.links.size());
    EXPECT_EQ(heat.links[key.first].bytes[key.second], bytes);
  }
  for (const auto& [key, bytes] : rec.qpi_bytes) {
    ASSERT_LT(static_cast<std::size_t>(key.first), heat.nodes.size());
    EXPECT_EQ(heat.nodes[key.first].bytes[key.second], bytes);
  }
  // And nothing else is loaded: unrecorded (id, dir) pairs stay zero.
  for (const auto& l : heat.links) {
    for (int dir = 0; dir < 2; ++dir) {
      if (rec.link_bytes.find({static_cast<int>(l.link), dir}) ==
          rec.link_bytes.end()) {
        EXPECT_EQ(l.bytes[dir], 0.0);
      }
    }
  }

  const std::string html =
      render_topo_heatmap(m, heat, "ring over cyclic layout");
  expect_well_formed(html);

  const std::string diff = render_topo_diff(m, heat, heat, "self diff");
  expect_well_formed(diff);
}

TEST(Topo, OutOfRangeCounterIdsAreIgnored) {
  const Machine m = Machine::gpc(1);
  report::ScheduleRecord rec;
  rec.link_bytes[{9999, 0}] = 64.0;  // no such link on a 1-node machine
  rec.qpi_bytes[{9999, 1}] = 64.0;
  const TopoHeatmap heat = build_topo_heatmap(m, rec);
  EXPECT_EQ(heat.max_link_bytes, 0.0);
  EXPECT_EQ(heat.max_qpi_bytes, 0.0);
}

// ---------------------------------------------------------------------------
// Communication matrix: byte conservation.

TEST(Matrix, ConservesRepeatWeightedBytes) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  const report::ScheduleRecord rec = record_ring(comm);

  const CommMatrix mat = build_comm_matrix(rec, m);
  EXPECT_EQ(mat.n, 16);
  EXPECT_FALSE(mat.by_node);

  // Total bytes in the matrix equal the repeat-weighted sum over the
  // recorded transfers — integers summed in doubles, so exactly.
  double expected = 0.0;
  for (const auto& s : rec.stages)
    for (int i = s.first_transfer; i < s.first_transfer + s.num_transfers;
         ++i)
      expected += static_cast<double>(rec.transfers[i].bytes) * s.repeats;
  EXPECT_EQ(mat.total_bytes, expected);
  double cells = 0.0;
  for (int i = 0; i < mat.n; ++i)
    for (int j = 0; j < mat.n; ++j) cells += mat.cell(i, j);
  EXPECT_EQ(cells, mat.total_bytes);

  expect_well_formed(render_comm_matrix(mat, "ring"));
  expect_well_formed(
      render_comm_matrix_pair(mat, "baseline", mat, "reordered"));
}

TEST(Matrix, AggregatesToNodesAboveThreshold) {
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, {}));
  const report::ScheduleRecord rec = record_ring(comm);
  const CommMatrix mat = build_comm_matrix(rec, m, /*aggregate_above=*/8);
  EXPECT_TRUE(mat.by_node);
  EXPECT_EQ(mat.n, 4);
  // Aggregation moves bytes between cells, never in or out.
  const CommMatrix full = build_comm_matrix(rec, m);
  EXPECT_EQ(mat.total_bytes, full.total_bytes);
}

// ---------------------------------------------------------------------------
// Timeline and edge cases.

TEST(Timeline, RendersBandsAndCriticalSplit) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  const report::ScheduleRecord rec = record_ring(comm);
  const report::CriticalPath path = report::analyze_critical_path(rec, m);
  const std::string html = render_timeline(rec, path, "ring timeline");
  expect_well_formed(html);
  EXPECT_NE(html.find("serialization"), std::string::npos);
}

TEST(EdgeCases, EmptyRecordRendersNotesNotCrashes) {
  const Machine m = Machine::gpc(1);
  const report::ScheduleRecord rec;  // nothing recorded
  const report::CriticalPath path;
  expect_well_formed(render_timeline(rec, path, "empty"));
  const TopoHeatmap heat = build_topo_heatmap(m, rec);
  expect_well_formed(render_topo_heatmap(m, heat, "empty"));
  const CommMatrix mat = build_comm_matrix(rec, m);
  EXPECT_EQ(mat.n, 0);
  EXPECT_EQ(mat.total_bytes, 0.0);
  expect_well_formed(render_comm_matrix(mat, "empty"));
  expect_well_formed(render_trend({}, report::CompareOptions{}));
}

TEST(EdgeCases, SingleRankRunRenders) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 1, {}));
  report::ScheduleRecorder recorder;
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 64, 1);
  eng.set_trace_sink(&recorder);
  eng.begin_stage();
  eng.copy(0, 0, 0, 0, 1);  // a rank talking to itself
  eng.end_stage();
  const report::ScheduleRecord rec = recorder.take();
  const report::CriticalPath path = report::analyze_critical_path(rec, m);
  expect_well_formed(render_timeline(rec, path, "single rank"));
  const CommMatrix mat = build_comm_matrix(rec, m);
  EXPECT_EQ(mat.n, 1);
  expect_well_formed(render_comm_matrix(mat, "single rank"));
}

// ---------------------------------------------------------------------------
// Trend flagging.

TEST(Trend, FlagsGatedRegressionsAgainstFirstSet) {
  TrendSet base{"baseline", {sample_snapshot(100.0)}};
  TrendSet good{"current", {sample_snapshot(100.5)}};  // within 2%
  TrendSet bad{"current", {sample_snapshot(120.0)}};   // +20%

  const std::string pass = render_trend({base, good});
  expect_well_formed(pass);
  EXPECT_NE(pass.find("PASS"), std::string::npos);
  EXPECT_EQ(pass.find("REGRESSED"), std::string::npos);

  const std::string fail = render_trend({base, bad});
  expect_well_formed(fail);
  EXPECT_NE(fail.find("REGRESSED"), std::string::npos);
  EXPECT_NE(fail.find("latency_us"), std::string::npos);
}

TEST(Trend, SingleSetRendersWithoutFlags) {
  const std::string html = render_trend({{"baseline", {sample_snapshot(1.0)}}});
  expect_well_formed(html);
  EXPECT_EQ(html.find("REGRESSED"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The dashboard: determinism and structure.

TEST(Dashboard, SameSeedRunsProduceByteIdenticalHtml) {
  auto render = [](std::uint64_t seed) {
    const Pair p = make_pair(seed);
    DashboardInputs in;
    in.subtitle = "ring over 16 ranks";
    in.machine = &p.machine;
    in.baseline = &p.baseline;
    in.candidate = &p.candidate;
    in.trend = {{"baseline", {sample_snapshot(100.0)}},
                {"current", {sample_snapshot(100.0)}}};
    return render_dashboard(in);
  };
  // Two fully independent builds — machine, framework, records — of the
  // same seed serialize to the same bytes.
  const std::string a = render(7);
  const std::string b = render(7);
  EXPECT_EQ(a, b);
  expect_well_formed(a);
  // Every view made it onto the page.
  for (const char* needle :
       {"Summary", "Topology load", "Communication matrix",
        "Timeline &amp; critical path", "Mapping attribution",
        "Perf trajectory"})
    EXPECT_NE(a.find(needle), std::string::npos) << needle;
}

TEST(Dashboard, RequiresMachineAndBaseline) {
  DashboardInputs in;
  EXPECT_THROW(render_dashboard(in), Error);
}

TEST(Dashboard, BaselineOnlyDropsComparativeSections) {
  const Pair p = make_pair(1);
  DashboardInputs in;
  in.machine = &p.machine;
  in.baseline = &p.baseline;
  const std::string html = render_dashboard(in);
  expect_well_formed(html);
  EXPECT_EQ(html.find("Mapping attribution"), std::string::npos);
  EXPECT_EQ(html.find("Perf trajectory"), std::string::npos);
}

}  // namespace
}  // namespace tarr::viz
