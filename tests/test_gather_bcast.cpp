#include "collectives/gather_bcast.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "check/audit_engine.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"
#include "core/framework.hpp"
#include "simmpi/layout.hpp"

namespace tarr::collectives {
namespace {

using core::ReorderFramework;
using simmpi::Communicator;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

/// Parameter: (algo, p, reorder?, fix).
using GatherParam = std::tuple<TreeAlgo, int, bool, OrderFix>;

class GatherCorrectness : public ::testing::TestWithParam<GatherParam> {};

TEST_P(GatherCorrectness, RootHoldsBlocksInOriginalOrder) {
  const auto [algo, p, reorder, fix] = GetParam();
  const Machine m = Machine::gpc(std::max(1, (p + 7) / 8));
  if (p > m.total_cores()) GTEST_SKIP();
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));

  Communicator use = comm;
  std::vector<Rank> oldrank = identity_permutation(p);
  if (reorder) {
    ReorderFramework fw(m);
    auto rc = fw.reorder(comm, mapping::Pattern::BinomialGather);
    use = rc.comm;
    oldrank = rc.oldrank;
  }

  Engine eng(use, simmpi::CostConfig{}, ExecMode::Data, 64, p);
  run_gather(eng, algo, fix, oldrank);
  check::audit_gather(eng);
}

INSTANTIATE_TEST_SUITE_P(
    BinomialReordered, GatherCorrectness,
    ::testing::Combine(::testing::Values(TreeAlgo::Binomial),
                       ::testing::Values(1, 2, 3, 5, 8, 16, 24, 32),
                       ::testing::Values(true),
                       ::testing::Values(OrderFix::InitComm,
                                         OrderFix::EndShuffle)));

INSTANTIATE_TEST_SUITE_P(
    BinomialIdentity, GatherCorrectness,
    ::testing::Combine(::testing::Values(TreeAlgo::Binomial),
                       ::testing::Values(1, 4, 7, 16, 32),
                       ::testing::Values(false),
                       ::testing::Values(OrderFix::None)));

// Linear gather addresses slots directly; no mechanism needed even under
// reordering.
INSTANTIATE_TEST_SUITE_P(
    Linear, GatherCorrectness,
    ::testing::Combine(::testing::Values(TreeAlgo::Linear),
                       ::testing::Values(1, 2, 5, 8, 16),
                       ::testing::Values(false, true),
                       ::testing::Values(OrderFix::None)));

TEST(Gather, LinearSerializesArrivals) {
  // p-1 sequential stages: linear gather of p ranks costs at least p-1
  // channel latencies.
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, LayoutSpec{}));
  Engine lin(comm, simmpi::CostConfig{}, ExecMode::Timed, 64, 16);
  Engine bin(comm, simmpi::CostConfig{}, ExecMode::Timed, 64, 16);
  const Usec t_lin = run_gather(lin, TreeAlgo::Linear, OrderFix::None,
                                identity_permutation(16));
  const Usec t_bin = run_gather(bin, TreeAlgo::Binomial, OrderFix::None,
                                identity_permutation(16));
  EXPECT_GT(t_lin, t_bin);  // log stages beat serialized arrivals
}

class BcastCorrectness
    : public ::testing::TestWithParam<std::tuple<TreeAlgo, int>> {};

TEST_P(BcastCorrectness, EveryRankReceivesTheMessage) {
  const auto [algo, p] = GetParam();
  const Machine m = Machine::gpc(std::max(1, (p + 7) / 8));
  if (p > m.total_cores()) GTEST_SKIP();
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, 1);
  run_bcast(eng, algo);
  check::audit_bcast(eng, kBcastMessageTag);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BcastCorrectness,
    ::testing::Combine(::testing::Values(TreeAlgo::Linear,
                                         TreeAlgo::Binomial),
                       ::testing::Values(1, 2, 3, 6, 8, 13, 16, 32)));

class ScatterAllgatherBcast : public ::testing::TestWithParam<int> {};

TEST_P(ScatterAllgatherBcast, ReassemblesTheMessageEverywhere) {
  const int p = GetParam();
  const Machine m = Machine::gpc(std::max(1, (p + 7) / 8));
  if (p > m.total_cores()) GTEST_SKIP();
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, p);
  run_bcast_scatter_allgather(eng, AllgatherAlgo::Ring);
  check::audit_allgather(eng);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScatterAllgatherBcast,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 24));

TEST(ScatterAllgatherBcastRd, PowerOfTwoUsesRecursiveDoubling) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, 16);
  run_bcast_scatter_allgather(eng, AllgatherAlgo::RecursiveDoubling);
  check::audit_allgather(eng);
}

TEST(ScatterAllgatherBcastRd, BruckPhaseRejected) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 4, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, 4);
  EXPECT_THROW(run_bcast_scatter_allgather(eng, AllgatherAlgo::Bruck), Error);
}

}  // namespace
}  // namespace tarr::collectives
