#include "topology/routing.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "topology/fattree.hpp"

namespace tarr::topology {
namespace {

/// Walks the path and checks every hop is a valid traversal.
void expect_valid_path(const SwitchGraph& g, const Router& r, NodeId src,
                       NodeId dst) {
  NetVertexId at = g.host_vertex(src);
  for (LinkId l : r.path(src, dst)) at = g.other_end(l, at);
  EXPECT_EQ(at, g.host_vertex(dst));
}

TEST(Router, EmptyPathForSelf) {
  const SwitchGraph g = build_single_switch_network(3);
  const Router r(g);
  EXPECT_EQ(r.hops(1, 1), 0);
  EXPECT_TRUE(r.path(2, 2).empty());
}

TEST(Router, SingleSwitchTwoHops) {
  const SwitchGraph g = build_single_switch_network(4);
  const Router r(g);
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = 0; b < 4; ++b) {
      if (a != b) {
        EXPECT_EQ(r.hops(a, b), 2);
      }
    }
  }
}

TEST(Router, AllPairsValidOnGpc) {
  const SwitchGraph g = build_gpc_network(90);  // 3 leaves
  const Router r(g);
  for (NodeId a = 0; a < 90; a += 7)
    for (NodeId b = 0; b < 90; b += 11)
      if (a != b) expect_valid_path(g, r, a, b);
}

TEST(Router, GpcHopCountsByLocality) {
  const SwitchGraph g = build_gpc_network(240);  // 8 leaves, 2 line groups
  const Router r(g);
  // Same leaf: host-leaf-host.
  EXPECT_EQ(r.hops(0, 1), 2);
  EXPECT_EQ(r.hops(0, 29), 2);
  // Different leaves, same line-switch group (leaves 0..5 share line 0):
  // host-leaf-line-leaf-host.
  EXPECT_EQ(r.hops(0, 30), 4);
  EXPECT_EQ(r.hops(0, 5 * 30), 4);
  // Different line groups (leaf 0 vs leaf 6): via a spine, 6 hops.
  EXPECT_EQ(r.hops(0, 6 * 30), 6);
}

TEST(Router, HopsAreSymmetric) {
  const SwitchGraph g = build_gpc_network(240);
  const Router r(g);
  for (NodeId a = 0; a < 240; a += 13)
    for (NodeId b = 0; b < 240; b += 17)
      EXPECT_EQ(r.hops(a, b), r.hops(b, a));
}

TEST(Router, DeterministicAcrossInstances) {
  const SwitchGraph g = build_gpc_network(120);
  const Router r1(g), r2(g);
  for (NodeId a = 0; a < 120; a += 10) {
    for (NodeId b = 0; b < 120; b += 9) {
      if (a == b) continue;
      const auto p1 = r1.path(a, b);
      const auto p2 = r2.path(a, b);
      ASSERT_EQ(p1.size(), p2.size());
      for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i], p2[i]);
    }
  }
}

TEST(Router, SpreadsTrafficAcrossUplinks) {
  // Flows from leaf 0 to many distinct far-away destinations should not all
  // take the same first uplink (destination-based spreading).
  const SwitchGraph g = build_gpc_network(960);
  const Router r(g);
  std::set<LinkId> first_uplinks;
  for (NodeId dst = 300; dst < 960; dst += 30) {
    const auto p = r.path(0, dst);
    ASSERT_GE(p.size(), 2u);
    first_uplinks.insert(p[1]);  // p[0] is the host link
  }
  EXPECT_GT(first_uplinks.size(), 1u);
}

TEST(Router, PathUsesShortestRoute) {
  // In a two-level fat tree every inter-leaf route is exactly 4 hops.
  const SwitchGraph g = build_two_level_fattree(16, 4, 3);
  const Router r(g);
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      if (a == b) continue;
      EXPECT_EQ(r.hops(a, b), a / 4 == b / 4 ? 2 : 4);
    }
  }
}

TEST(Router, OutOfRangeThrows) {
  const SwitchGraph g = build_single_switch_network(2);
  const Router r(g);
  EXPECT_THROW(r.path(0, 2), Error);
  EXPECT_THROW(r.path(-1, 0), Error);
}

TEST(Router, SingleHostGraphIsTriviallyConnected) {
  const SwitchGraph g = build_single_switch_network(1);
  const Router r(g);
  EXPECT_TRUE(r.fully_connected());
  EXPECT_EQ(r.partition().components.size(), 1u);
  EXPECT_EQ(r.hops(0, 0), 0);
  EXPECT_TRUE(r.reachable(0, 0));
}

TEST(Router, DisconnectedGraphThrowsStructuredError) {
  // Two islands wired by hand: hosts {0,1} on one switch, {2,3} on another,
  // no cable between the switches.
  SwitchGraph g;
  const auto sa = g.add_vertex(VertexKind::Switch, "a");
  const auto sb = g.add_vertex(VertexKind::Switch, "b");
  for (NodeId n = 0; n < 4; ++n) {
    const auto h = g.add_vertex(VertexKind::Host, "n" + std::to_string(n), n);
    g.add_link(h, n < 2 ? sa : sb);
  }
  try {
    Router r(g);
    FAIL() << "expected PartitionedError";
  } catch (const PartitionedError& e) {
    ASSERT_EQ(e.info().components.size(), 2u);
    EXPECT_EQ(e.info().components[0], (std::vector<NodeId>{0, 1}));
    EXPECT_EQ(e.info().components[1], (std::vector<NodeId>{2, 3}));
  }
}

TEST(Router, HostComponentsReportsIsolatedHostsAsSingletons) {
  SwitchGraph g;
  const auto sw = g.add_vertex(VertexKind::Switch, "sw");
  const auto h0 = g.add_vertex(VertexKind::Host, "n0", 0);
  g.add_link(h0, sw);
  g.add_vertex(VertexKind::Host, "n1", 1);  // no links at all
  const Partitioned parts = host_components(g);
  ASSERT_EQ(parts.components.size(), 2u);
  EXPECT_EQ(parts.components[0], (std::vector<NodeId>{0}));
  EXPECT_EQ(parts.components[1], (std::vector<NodeId>{1}));
  EXPECT_NE(parts.describe().find("2 component"), std::string::npos);
}

TEST(Router, MultiLinkRemovalPartitionsFatTree) {
  // Cutting both of leaf 0's uplinks splits its 4 nodes from the rest.
  const SwitchGraph g = build_two_level_fattree(8, 4, 2);
  const SwitchGraph cut = g.with_failed_links({0, 1});
  EXPECT_THROW(Router{cut}, PartitionedError);

  const Router r(cut, Router::HostPolicy::AllowUnreachable);
  EXPECT_FALSE(r.fully_connected());
  ASSERT_EQ(r.partition().components.size(), 2u);
  EXPECT_EQ(r.partition().components[0], (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(r.partition().components[1], (std::vector<NodeId>{4, 5, 6, 7}));
  // Pairs inside a component still route; pairs across the cut throw the
  // structured error at use time.
  EXPECT_TRUE(r.reachable(0, 3));
  EXPECT_EQ(r.hops(0, 3), 2);
  expect_valid_path(cut, r, 5, 7);
  EXPECT_FALSE(r.reachable(0, 4));
  EXPECT_THROW(r.path(0, 4), PartitionedError);
  EXPECT_THROW(r.hops(4, 0), PartitionedError);
  try {
    r.path(0, 4);
  } catch (const PartitionedError& e) {
    EXPECT_EQ(e.info().components.size(), 2u);
  }
}

TEST(Router, SingleLinkFailureFailsOverAtEqualLength) {
  // With a surviving parallel spine, every pair keeps a 4-hop route after
  // one uplink dies.
  const SwitchGraph g = build_two_level_fattree(8, 4, 2);
  const Router before(g);
  const auto first_uplink = before.path(0, 4)[1];
  const SwitchGraph cut = g.with_failed_links({first_uplink});
  const Router after(cut);
  EXPECT_TRUE(after.fully_connected());
  for (NodeId a = 0; a < 8; ++a)
    for (NodeId b = 0; b < 8; ++b) {
      if (a == b) continue;
      EXPECT_EQ(after.hops(a, b), a / 4 == b / 4 ? 2 : 4);
      expect_valid_path(cut, after, a, b);
    }
}

}  // namespace
}  // namespace tarr::topology
