#include "probe/probe.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "fault/degraded.hpp"
#include "mapping/mapper.hpp"
#include "topology/distance.hpp"
#include "topology/fattree.hpp"
#include "topology/machine.hpp"
#include "trace/tracer.hpp"

namespace tarr::probe {
namespace {

using fault::DegradedTopology;
using fault::FaultMask;
using topology::DistanceMatrix;
using topology::Machine;
using topology::NodeShape;
using topology::build_gpc_network;

/// Small GPC-style machine shared by most tests: 8 nodes, 2 leaves.
Machine small_machine() {
  topology::GpcTreeConfig tree;
  tree.num_leaves = 2;
  tree.nodes_per_leaf = 4;
  tree.num_cores = 2;
  tree.uplinks_per_core = 2;
  tree.lines_per_core = 2;
  tree.spines_per_core = 2;
  tree.leaves_per_line = 1;
  return Machine(NodeShape{.sockets = 1, .cores_per_socket = 2},
                 build_gpc_network(8, tree));
}

DistanceMatrix quiet_truth(const Machine& m) {
  return effective_node_distances(DegradedTopology(m, FaultMask{}));
}

/// Metrics CSV without the wall.* counters: real wall-clock spans are
/// nondeterministic by design (they never gate anywhere in the repo);
/// everything else must be byte-identical across same-seed runs.
std::string sans_wall(const std::string& csv) {
  std::string out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t eol = csv.find('\n', pos);
    const std::string line =
        csv.substr(pos, eol == std::string::npos ? eol : eol - pos + 1);
    if (line.find(",wall.") == std::string::npos) out += line;
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return out;
}

// ---------------------------------------------------------------------------
// ProbeConfig validation.

TEST(ProbeConfig, ValidationRejectsOutOfRangeFields) {
  ProbeConfig ok;
  EXPECT_NO_THROW(validate(ok));
  ProbeConfig bad = ok;
  bad.samples_per_pair = 0;
  EXPECT_THROW(validate(bad), Error);
  bad = ok;
  bad.noise = 1.0;
  EXPECT_THROW(validate(bad), Error);
  bad = ok;
  bad.noise = -0.1;
  EXPECT_THROW(validate(bad), Error);
  bad = ok;
  bad.outlier_prob = 1.5;
  EXPECT_THROW(validate(bad), Error);
  bad = ok;
  bad.outlier_scale = 0.5;
  EXPECT_THROW(validate(bad), Error);
  bad = ok;
  bad.timeout_prob = -0.1;
  EXPECT_THROW(validate(bad), Error);
  bad = ok;
  bad.max_attempts = 0;
  EXPECT_THROW(validate(bad), Error);
  bad = ok;
  bad.worst_case_margin = 0.9;
  EXPECT_THROW(validate(bad), Error);
  bad = ok;
  bad.min_resolved_fraction = 1.5;
  EXPECT_THROW(validate(bad), Error);
}

// ---------------------------------------------------------------------------
// Noiseless probing is exact.

TEST(Probe, ZeroNoiseRecoversTruthExactly) {
  const Machine m = small_machine();
  const DistanceMatrix truth = quiet_truth(m);
  ProbeConfig cfg;
  cfg.noise = 0.0;
  cfg.outlier_prob = 0.0;
  const ProbedDistances out = probe_distances(m, truth, cfg);
  EXPECT_EQ(out.report.resolved_pairs, out.report.pairs);
  EXPECT_EQ(out.report.pairs, 8 * 7 / 2);
  EXPECT_DOUBLE_EQ(out.report.rms_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(out.report.max_rel_error, 0.0);
  for (NodeId a = 0; a < 8; ++a)
    for (NodeId b = 0; b < 8; ++b)
      EXPECT_FLOAT_EQ(out.node.at(a, b), truth.at(a, b)) << a << "," << b;
}

TEST(Probe, IntraNodeBlockIsNeverNoisy) {
  // hwloc runs locally: intra-node distances stay exact at any noise level.
  const Machine m = small_machine();
  const DistanceMatrix truth = quiet_truth(m);
  ProbeConfig cfg;
  cfg.noise = 0.4;
  cfg.seed = 99;
  const ProbedDistances out = probe_distances(m, truth, cfg);
  const DistanceMatrix exact =
      topology::extract_distances(m, cfg.distances);
  for (int c = 0; c < m.total_cores(); ++c) {
    EXPECT_FLOAT_EQ(out.core.at(c, c), exact.at(c, c));
    // Same-node, different-core entries are the exact local distances.
    const int peer = (c % 2 == 0) ? c + 1 : c - 1;
    EXPECT_FLOAT_EQ(out.core.at(c, peer), exact.at(c, peer));
  }
}

TEST(Probe, NoiseIsBoundedByConfiguredHalfWidth) {
  const Machine m = small_machine();
  const DistanceMatrix truth = quiet_truth(m);
  ProbeConfig cfg;
  cfg.noise = 0.2;
  cfg.outlier_prob = 0.0;  // spikes intentionally exceed the noise band
  const ProbedDistances out = probe_distances(m, truth, cfg);
  for (const PairProbe& p : out.report.pair_stats) {
    ASSERT_TRUE(p.resolved);
    const double rel = std::abs(p.estimate / p.truth - 1.0);
    EXPECT_LE(rel, cfg.noise + 1e-6);
  }
  EXPECT_LE(out.report.max_rel_error, cfg.noise + 1e-6);
}

// ---------------------------------------------------------------------------
// Median-of-k outlier rejection.

TEST(Probe, MedianRejectsOutlierSpikes) {
  // With k = 5 samples and a modest spike probability, the median estimate
  // must stay within the noise band for the vast majority of pairs even
  // though individual samples are 4x spikes.
  const Machine m = small_machine();
  const DistanceMatrix truth = quiet_truth(m);
  ProbeConfig cfg;
  cfg.noise = 0.05;
  cfg.outlier_prob = 0.2;
  cfg.outlier_scale = 4.0;
  cfg.samples_per_pair = 5;
  const ProbedDistances out = probe_distances(m, truth, cfg);
  int poisoned = 0;
  for (const PairProbe& p : out.report.pair_stats)
    if (std::abs(p.estimate / p.truth - 1.0) > 1.0) ++poisoned;
  // A mean estimator would be poisoned on ~63% of pairs
  // (P[>=1 spike in 5] with p=.2); the median keeps nearly all clean.
  EXPECT_LE(poisoned, out.report.pairs / 10);
}

// ---------------------------------------------------------------------------
// Timeouts, retries, and unresolved pairs.

TEST(Probe, TimeoutsAreRetriedWithBackoffCost) {
  const Machine m = small_machine();
  const DistanceMatrix truth = quiet_truth(m);
  ProbeConfig cfg;
  cfg.timeout_prob = 0.3;
  cfg.seed = 5;
  const ProbedDistances out = probe_distances(m, truth, cfg);
  EXPECT_GT(out.report.timeouts, 0);
  EXPECT_GT(out.report.retries, 0);
  EXPECT_GT(out.report.measurements,
            static_cast<long long>(out.report.pairs) * cfg.samples_per_pair);
  // Backoff waits make a lossy probe strictly more expensive than a clean
  // one with the same sample budget.
  ProbeConfig clean = cfg;
  clean.timeout_prob = 0.0;
  const ProbedDistances quiet = probe_distances(m, truth, clean);
  EXPECT_GT(out.report.probe_cost_usec, quiet.report.probe_cost_usec);
}

TEST(Probe, TotalLossFillsWorstCaseAndFails) {
  const Machine m = small_machine();
  const DistanceMatrix truth = quiet_truth(m);
  ProbeConfig cfg;
  cfg.timeout_prob = 1.0;
  const ProbedDistances out = probe_distances(m, truth, cfg);
  EXPECT_EQ(out.report.resolved_pairs, 0);
  EXPECT_EQ(out.report.unresolved_pairs(), out.report.pairs);
  EXPECT_TRUE(out.report.failed(cfg));
  // Every inter-node entry degraded to the same conservative worst case,
  // and the matrix stayed finite.
  const float wc = out.report.worst_case_distance;
  EXPECT_TRUE(std::isfinite(wc));
  for (NodeId a = 0; a < 8; ++a)
    for (NodeId b = a + 1; b < 8; ++b)
      EXPECT_FLOAT_EQ(out.node.at(a, b), wc);
}

TEST(Probe, WorstCaseFillExceedsEveryResolvedEstimate) {
  const Machine m = small_machine();
  const DistanceMatrix truth = quiet_truth(m);
  ProbeConfig cfg;
  cfg.timeout_prob = 0.6;  // some pairs lose all samples, most resolve
  cfg.max_attempts = 1;
  cfg.samples_per_pair = 2;
  cfg.seed = 17;
  const ProbedDistances out = probe_distances(m, truth, cfg);
  ASSERT_GT(out.report.unresolved_pairs(), 0);
  ASSERT_GT(out.report.resolved_pairs, 0);
  float max_resolved = 0.0f;
  for (const PairProbe& p : out.report.pair_stats)
    if (p.resolved) max_resolved = std::max(max_resolved, p.estimate);
  EXPECT_GE(out.report.worst_case_distance, max_resolved);
  for (const PairProbe& p : out.report.pair_stats)
    if (!p.resolved)
      EXPECT_FLOAT_EQ(out.node.at(p.a, p.b), out.report.worst_case_distance);
}

// ---------------------------------------------------------------------------
// Determinism: same seed, same bytes.

TEST(Probe, SameSeedIsByteIdenticalIncludingTrace) {
  const Machine m = small_machine();
  const DistanceMatrix truth = quiet_truth(m);
  ProbeConfig cfg;
  cfg.noise = 0.15;
  cfg.outlier_prob = 0.1;
  cfg.timeout_prob = 0.1;
  cfg.seed = 42;

  trace::Tracer t1, t2;
  const ProbedDistances a = probe_distances(m, truth, cfg, &t1);
  const ProbedDistances b = probe_distances(m, truth, cfg, &t2);
  EXPECT_EQ(a.report.csv(), b.report.csv());
  EXPECT_EQ(a.report.summary(), b.report.summary());
  EXPECT_EQ(sans_wall(t1.metrics().csv()), sans_wall(t2.metrics().csv()));
  for (NodeId x = 0; x < 8; ++x)
    for (NodeId y = 0; y < 8; ++y)
      EXPECT_FLOAT_EQ(a.node.at(x, y), b.node.at(x, y));
  for (int x = 0; x < m.total_cores(); ++x)
    for (int y = 0; y < m.total_cores(); ++y)
      EXPECT_FLOAT_EQ(a.core.at(x, y), b.core.at(x, y));

  ProbeConfig other = cfg;
  other.seed = 43;
  const ProbedDistances c = probe_distances(m, truth, other);
  EXPECT_NE(a.report.csv(), c.report.csv());
}

// ---------------------------------------------------------------------------
// Congestion model.

TEST(Congestion, MaskIsPureFunctionOfConfigAndEpoch) {
  const Machine m = small_machine();
  CongestionConfig cfg;
  cfg.link_prob = 0.5;
  for (int e : {0, 3, 1}) {  // any order: no hidden state
    const FaultMask a = congestion_mask(m.network(), cfg, e);
    const FaultMask b = congestion_mask(m.network(), cfg, e);
    EXPECT_EQ(a.describe(), b.describe()) << "epoch " << e;
  }
}

TEST(Congestion, ZeroChurnFreezesThePattern) {
  const Machine m = small_machine();
  CongestionConfig cfg;
  cfg.churn = 0.0;
  cfg.link_prob = 0.5;
  const FaultMask e0 = congestion_mask(m.network(), cfg, 0);
  for (int e = 1; e < 5; ++e)
    EXPECT_EQ(congestion_mask(m.network(), cfg, e).describe(), e0.describe());
}

TEST(Congestion, FullChurnResamplesEveryEpoch) {
  const Machine m = small_machine();
  CongestionConfig cfg;
  cfg.churn = 1.0;
  cfg.link_prob = 0.5;
  int changed = 0;
  for (int e = 1; e < 6; ++e)
    if (congestion_mask(m.network(), cfg, e).describe() !=
        congestion_mask(m.network(), cfg, e - 1).describe())
      ++changed;
  EXPECT_GE(changed, 3);
}

TEST(Congestion, SparesHostLinksByDefault) {
  const Machine m = small_machine();
  CongestionConfig cfg;
  cfg.link_prob = 1.0;  // congest everything eligible
  const FaultMask mask = congestion_mask(m.network(), cfg, 0);
  const topology::SwitchGraph d = mask.apply(m.network());
  for (LinkId l = 0; l < m.network().num_links(); ++l) {
    const auto& ln = m.network().link(l);
    const bool host =
        m.network().vertex(ln.a).kind == topology::VertexKind::Host ||
        m.network().vertex(ln.b).kind == topology::VertexKind::Host;
    if (host) EXPECT_EQ(d.link(l).capacity, ln.capacity);
  }
}

TEST(Congestion, EffectiveDistancesReduceToHopDistancesWhenQuiet) {
  const Machine m = small_machine();
  const DistanceMatrix eff =
      effective_node_distances(DegradedTopology(m, FaultMask{}));
  const DistanceMatrix hop = topology::extract_node_distances(m);
  for (NodeId a = 0; a < 8; ++a)
    for (NodeId b = 0; b < 8; ++b)
      EXPECT_FLOAT_EQ(eff.at(a, b), hop.at(a, b));
}

TEST(Congestion, CongestedLinksLengthenEffectiveDistances) {
  const Machine m = small_machine();
  CongestionConfig cfg;
  cfg.link_prob = 1.0;
  cfg.min_factor = 0.25;
  cfg.max_factor = 0.5;
  const DegradedTopology quiet(m, FaultMask{});
  const DegradedTopology busy(m, congestion_mask(m.network(), cfg, 0));
  const DistanceMatrix dq = effective_node_distances(quiet);
  const DistanceMatrix db = effective_node_distances(busy);
  double grew = 0.0;
  for (NodeId a = 0; a < 8; ++a)
    for (NodeId b = 0; b < 8; ++b) {
      EXPECT_GE(db.at(a, b), dq.at(a, b) - 1e-6);
      grew += db.at(a, b) - dq.at(a, b);
    }
  EXPECT_GT(grew, 0.0);
}

// ---------------------------------------------------------------------------
// Adaptive controller state machine.

struct ControllerHarness {
  Machine m = small_machine();
  std::unique_ptr<mapping::Mapper> mapper =
      mapping::make_heuristic(mapping::Pattern::Ring);
  DegradedTopology quiet{m, FaultMask{}};
  std::vector<int> slots;

  ControllerHarness() {
    slots.resize(static_cast<std::size_t>(m.total_cores()));
    std::iota(slots.begin(), slots.end(), 0);
  }

  ControllerConfig config() const {
    ControllerConfig cfg;
    cfg.probe.noise = 0.0;
    cfg.probe.outlier_prob = 0.0;
    cfg.drift_threshold = 0.1;
    cfg.hysteresis = 2;
    cfg.cooldown = 1;
    return cfg;
  }
};

TEST(Controller, FirstObservationCalibratesTheReference) {
  ControllerHarness h;
  AdaptiveController ctl(*h.mapper, h.config(), h.quiet, h.slots);
  EXPECT_FALSE(ctl.fallback_active());
  EXPECT_EQ(ctl.remaps(), 1);  // the initial probe-and-map
  const Decision d = ctl.observe(0, h.quiet, 100.0);
  EXPECT_EQ(d.action, Action::Calibrate);
  EXPECT_DOUBLE_EQ(d.reference, 100.0);
  EXPECT_DOUBLE_EQ(d.drift, 0.0);
}

TEST(Controller, HysteresisRequiresConsecutiveStaleEpochs) {
  ControllerHarness h;
  AdaptiveController ctl(*h.mapper, h.config(), h.quiet, h.slots);
  ctl.observe(0, h.quiet, 100.0);                            // calibrate
  EXPECT_EQ(ctl.observe(1, h.quiet, 102.0).action, Action::Keep);
  // One stale epoch (drift 0.2)...
  const Decision d2 = ctl.observe(2, h.quiet, 120.0);
  EXPECT_EQ(d2.action, Action::Keep);
  EXPECT_EQ(d2.drift_streak, 1);
  // ...followed by a fresh one: the streak must reset, no re-map.
  const Decision d3 = ctl.observe(3, h.quiet, 101.0);
  EXPECT_EQ(d3.action, Action::Keep);
  EXPECT_EQ(d3.drift_streak, 0);
  // Two CONSECUTIVE stale epochs reach hysteresis and trigger the re-map.
  EXPECT_EQ(ctl.observe(4, h.quiet, 125.0).action, Action::Keep);
  const Decision d5 = ctl.observe(5, h.quiet, 130.0);
  EXPECT_EQ(d5.action, Action::Remap);
  EXPECT_EQ(d5.drift_streak, 2);
  EXPECT_EQ(ctl.remaps(), 2);
}

TEST(Controller, CooldownSuppressesDriftEvaluation) {
  ControllerHarness h;
  ControllerConfig cfg = h.config();
  cfg.hysteresis = 1;
  cfg.cooldown = 2;
  AdaptiveController ctl(*h.mapper, cfg, h.quiet, h.slots);
  ctl.observe(0, h.quiet, 100.0);                             // calibrate
  EXPECT_EQ(ctl.observe(1, h.quiet, 150.0).action, Action::Remap);
  // Post-remap: recalibration first, then two cooldown epochs that must not
  // trigger even at huge drift.
  EXPECT_EQ(ctl.observe(2, h.quiet, 100.0).action, Action::Calibrate);
  EXPECT_EQ(ctl.observe(3, h.quiet, 500.0).action, Action::Keep);
  EXPECT_EQ(ctl.observe(4, h.quiet, 500.0).action, Action::Keep);
  // Cooldown over: the next stale epoch triggers again.
  EXPECT_EQ(ctl.observe(5, h.quiet, 500.0).action, Action::Remap);
}

TEST(Controller, ProbeFailureFallsBackToIdentityAndRecovers) {
  ControllerHarness h;
  ControllerConfig cfg = h.config();
  cfg.hysteresis = 1;
  cfg.cooldown = 0;
  cfg.probe.timeout_prob = 1.0;  // probing impossible from the start
  AdaptiveController ctl(*h.mapper, cfg, h.quiet, h.slots);
  EXPECT_TRUE(ctl.fallback_active());
  EXPECT_EQ(ctl.mapping(), h.slots);  // identity = the initial layout
  EXPECT_EQ(ctl.fallbacks(), 1);
  for (std::size_t r = 0; r < h.slots.size(); ++r)
    EXPECT_EQ(ctl.oldrank()[r], static_cast<Rank>(r));

  ctl.observe(0, h.quiet, 100.0);  // calibrate on the fallback
  const Decision d = ctl.observe(1, h.quiet, 200.0);
  EXPECT_EQ(d.action, Action::Fallback);
  EXPECT_TRUE(d.probe_failed);
  EXPECT_TRUE(ctl.fallback_active());
}

TEST(Controller, DecisionsAreEmittedThroughTrace) {
  ControllerHarness h;
  ControllerConfig cfg = h.config();
  cfg.hysteresis = 1;
  trace::Tracer tracer;
  AdaptiveController ctl(*h.mapper, cfg, h.quiet, h.slots, &tracer);
  ctl.observe(0, h.quiet, 100.0);
  ctl.observe(1, h.quiet, 101.0);
  ctl.observe(2, h.quiet, 200.0);
  EXPECT_DOUBLE_EQ(tracer.metrics().count("probe.decision.calibrate"), 1.0);
  EXPECT_DOUBLE_EQ(tracer.metrics().count("probe.decision.keep"), 1.0);
  EXPECT_DOUBLE_EQ(tracer.metrics().count("probe.decision.remap"), 1.0);
}

TEST(Controller, ValidationRejectsBadKnobs) {
  ControllerConfig cfg;
  EXPECT_NO_THROW(validate(cfg));
  cfg.hysteresis = 0;
  EXPECT_THROW(validate(cfg), Error);
  cfg = ControllerConfig{};
  cfg.cooldown = -1;
  EXPECT_THROW(validate(cfg), Error);
  cfg = ControllerConfig{};
  cfg.drift_threshold = 0.0;
  EXPECT_THROW(validate(cfg), Error);
}

// ---------------------------------------------------------------------------
// Full scenario: determinism and structural guarantees.

ScenarioConfig tiny_scenario() {
  ScenarioConfig cfg;
  cfg.num_nodes = 8;
  cfg.tree.num_leaves = 2;
  cfg.tree.nodes_per_leaf = 4;
  cfg.tree.num_cores = 2;
  cfg.tree.uplinks_per_core = 2;
  cfg.tree.lines_per_core = 2;
  cfg.tree.spines_per_core = 2;
  cfg.tree.leaves_per_line = 1;
  cfg.shape = NodeShape{.sockets = 1, .cores_per_socket = 2};
  cfg.epochs = 4;
  cfg.congestion.link_prob = 0.4;
  cfg.controller.probe.samples_per_pair = 3;
  return cfg;
}

TEST(Scenario, SameConfigIsByteIdenticalAcrossRuns) {
  const ScenarioConfig cfg = tiny_scenario();
  trace::Tracer t1, t2;
  const ScenarioResult a = run_probed_scenario(cfg, &t1);
  const ScenarioResult b = run_probed_scenario(cfg, &t2);
  EXPECT_EQ(a.csv(), b.csv());
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(sans_wall(t1.metrics().csv()), sans_wall(t2.metrics().csv()));
}

TEST(Scenario, ProducesOneRowPerPatternEpoch) {
  const ScenarioConfig cfg = tiny_scenario();
  const ScenarioResult res = run_probed_scenario(cfg);
  ASSERT_EQ(res.rows.size(), cfg.patterns.size() *
                                 static_cast<std::size_t>(cfg.epochs));
  ASSERT_EQ(res.patterns.size(), cfg.patterns.size());
  for (const EpochRow& r : res.rows) {
    EXPECT_GT(r.identity_usec, 0.0);
    EXPECT_GT(r.oracle_usec, 0.0);
    EXPECT_GT(r.probed_usec, 0.0);
  }
  // Epoch 0 always calibrates.
  EXPECT_EQ(res.rows[0].action, Action::Calibrate);
}

TEST(Scenario, ForcedProbeFailureDegradesToIdentityEverywhere) {
  ScenarioConfig cfg = tiny_scenario();
  cfg.controller.probe.timeout_prob = 1.0;
  const ScenarioResult res = run_probed_scenario(cfg);
  for (const EpochRow& r : res.rows) {
    EXPECT_TRUE(r.fallback);
    EXPECT_DOUBLE_EQ(r.probed_usec, r.identity_usec);
  }
  for (const PatternSummary& p : res.patterns) {
    EXPECT_GE(p.fallbacks, 1);
    EXPECT_EQ(p.remaps, 0);
    EXPECT_DOUBLE_EQ(p.probed_mean, p.identity_mean);
    EXPECT_DOUBLE_EQ(p.probed_gain_pct(), 0.0);
  }
}

TEST(Scenario, ValidationRejectsBadConfigs) {
  ScenarioConfig cfg = tiny_scenario();
  cfg.epochs = 0;
  EXPECT_THROW(validate(cfg), Error);
  cfg = tiny_scenario();
  cfg.patterns.clear();
  EXPECT_THROW(validate(cfg), Error);
  cfg = tiny_scenario();
  cfg.num_nodes = 0;
  EXPECT_THROW(validate(cfg), Error);
}

}  // namespace
}  // namespace tarr::probe
