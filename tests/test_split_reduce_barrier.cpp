// Tests for communicator splitting, binomial reduce, and the dissemination
// barrier.

#include <gtest/gtest.h>

#include "collectives/reduce_barrier.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "simmpi/layout.hpp"
#include "simmpi/split.hpp"

namespace tarr::simmpi {
namespace {

using topology::Machine;

TEST(Split, ByColorGroupsAndOrders) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 8, LayoutSpec{}));
  const SplitResult res = split_by_color(comm, {1, 0, 1, 0, 1, 0, 1, 0});
  ASSERT_EQ(res.comms.size(), 2u);
  // Color 0 first (ascending color order): parent ranks 1,3,5,7.
  EXPECT_EQ(res.comms[0].size(), 4);
  EXPECT_EQ(res.comms[0].core_of(0), comm.core_of(1));
  EXPECT_EQ(res.comms[0].core_of(3), comm.core_of(7));
  EXPECT_EQ(res.comm_of_rank[1], 0);
  EXPECT_EQ(res.comm_of_rank[0], 1);
  EXPECT_EQ(res.rank_in_comm[5], 2);  // third of {1,3,5,7}
  EXPECT_EQ(res.rank_in_comm[4], 2);  // third of {0,2,4,6}
}

TEST(Split, ByNodeMatchesTopology) {
  const Machine m = Machine::gpc(4);
  const Communicator cyclic(
      m, make_layout(m, 32,
                     LayoutSpec{NodeOrder::Cyclic, SocketOrder::Bunch}));
  const SplitResult res = split_by_node(cyclic);
  ASSERT_EQ(res.comms.size(), 4u);
  for (const auto& sub : res.comms) {
    EXPECT_EQ(sub.size(), 8);
    for (Rank r = 1; r < sub.size(); ++r)
      EXPECT_EQ(sub.node_of(r), sub.node_of(0));
  }
  for (Rank r = 0; r < cyclic.size(); ++r)
    EXPECT_EQ(res.comms[res.comm_of_rank[r]].core_of(res.rank_in_comm[r]),
              cyclic.core_of(r));
}

TEST(Split, LeadersCommPicksLowestRankPerNode) {
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, LayoutSpec{}));
  const Communicator leaders = leaders_comm(comm);
  ASSERT_EQ(leaders.size(), 4);
  for (Rank b = 0; b < 4; ++b)
    EXPECT_EQ(leaders.core_of(b), comm.core_of(b * 8));
}

TEST(Split, ColorCountMismatchRejected) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 4, LayoutSpec{}));
  EXPECT_THROW(split_by_color(comm, {0, 1}), Error);
  EXPECT_THROW(split_by_color(comm, {0, -1, 0, 0}), Error);
}

}  // namespace
}  // namespace tarr::simmpi

namespace tarr::collectives {
namespace {

using simmpi::Communicator;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

class ReduceSizes : public ::testing::TestWithParam<int> {};

TEST_P(ReduceSizes, RootHoldsXorOfAllContributions) {
  const int p = GetParam();
  const Machine m = Machine::gpc(std::max(1, (p + 7) / 8));
  if (p > m.total_cores()) GTEST_SKIP();
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 128, 1);
  std::uint32_t expected = 0;
  for (Rank r = 0; r < p; ++r) {
    const std::uint32_t tag = 0x100u + 13u * r;
    eng.set_block(r, 0, tag);
    expected ^= tag;
  }
  run_reduce_binomial(eng);
  EXPECT_EQ(eng.block(0, 0), expected);
  EXPECT_EQ(eng.stages_executed(), p > 1 ? ceil_log2(p) : 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReduceSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 32));

class BarrierSizes : public ::testing::TestWithParam<int> {};

TEST_P(BarrierSizes, LogRoundsAndPositiveLatency) {
  const int p = GetParam();
  const Machine m = Machine::gpc(std::max(1, (p + 7) / 8));
  if (p > m.total_cores()) GTEST_SKIP();
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Timed, 1, 1);
  const Usec t = run_barrier_dissemination(eng);
  if (p == 1) {
    EXPECT_EQ(t, 0.0);
  } else {
    EXPECT_GT(t, 0.0);
    EXPECT_EQ(eng.stages_executed(), ceil_log2(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BarrierSizes,
                         ::testing::Values(1, 2, 3, 7, 8, 16, 31, 64));

TEST(Barrier, LatencyDominatedNotBandwidth) {
  // A barrier of 1-byte signals should cost far less than an allgather of
  // real payload on the same communicator.
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, LayoutSpec{}));
  Engine b(comm, simmpi::CostConfig{}, ExecMode::Timed, 1, 1);
  const Usec t_barrier = run_barrier_dissemination(b);
  EXPECT_LT(t_barrier, 100.0);  // a handful of latencies
}

}  // namespace
}  // namespace tarr::collectives
