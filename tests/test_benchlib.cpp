#include <gtest/gtest.h>

#include "bench/appmodel.hpp"
#include "bench/sweep.hpp"
#include "common/error.hpp"
#include "simmpi/layout.hpp"

namespace tarr::bench {
namespace {

TEST(Sweep, OsuSizesArePowersOfTwo) {
  const auto sizes = osu_message_sizes();
  ASSERT_FALSE(sizes.empty());
  EXPECT_EQ(sizes.front(), 1);
  EXPECT_EQ(sizes.back(), 256 * 1024);
  EXPECT_EQ(sizes.size(), 19u);  // 2^0 .. 2^18
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_EQ(sizes[i], 2 * sizes[i - 1]);
}

TEST(Sweep, CustomRange) {
  const auto sizes = osu_message_sizes(4, 32);
  EXPECT_EQ(sizes, (std::vector<Bytes>{4, 8, 16, 32}));
  EXPECT_THROW(osu_message_sizes(0, 8), Error);
  EXPECT_THROW(osu_message_sizes(16, 8), Error);
}

TEST(Sweep, ImprovementPercent) {
  EXPECT_DOUBLE_EQ(improvement_percent(100.0, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(improvement_percent(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(improvement_percent(100.0, 175.0), -75.0);
  EXPECT_THROW(improvement_percent(0.0, 1.0), Error);
}

TEST(AppModel, DefaultTraceMatchesPaperCallCount) {
  const auto trace = default_app_trace();
  EXPECT_EQ(trace_calls(trace), 3058);
  // The mix must exercise both selector regimes.
  bool has_small = false, has_large = false;
  for (const auto& e : trace) {
    if (e.msg < 32 * 1024) has_small = true;
    if (e.msg >= 32 * 1024) has_large = true;
  }
  EXPECT_TRUE(has_small);
  EXPECT_TRUE(has_large);
}

TEST(AppModel, CollectiveTimeIsCallWeighted) {
  const topology::Machine m = topology::Machine::gpc(4);
  core::ReorderFramework fw(m);
  const simmpi::Communicator comm(
      m, simmpi::make_layout(m, 32, simmpi::LayoutSpec{}));
  core::TopoAllgatherConfig cfg;
  cfg.mapper = core::MapperKind::None;
  core::TopoAllgather path(fw, comm, cfg);

  const std::vector<AppTraceEntry> trace{{1024, 10}, {64 * 1024, 5}};
  const Usec total = app_collective_time(path, trace);
  const Usec expected =
      10 * path.latency(1024) + 5 * path.latency(64 * 1024);
  EXPECT_NEAR(total, expected, 1e-9 * expected);
}

}  // namespace
}  // namespace tarr::bench
