// Tests for the tarr::check verification subsystem: the stage-schedule
// verifier, the mapping bijection verifier, the collective auditor, and
// their integration points (Engine hooks, Mapper::checked_map, the
// TARR_CHECK_SLOW macro tier).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/audit_engine.hpp"
#include "check/check.hpp"
#include "collectives/allgather.hpp"
#include "collectives/orderfix.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"
#include "mapping/heuristics.hpp"
#include "simmpi/layout.hpp"
#include "topology/distance.hpp"

namespace tarr::check {
namespace {

using simmpi::Communicator;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

/// Expects `fn()` to throw tarr::Error whose message contains `needle`.
template <typename Fn>
void expect_error_containing(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected tarr::Error containing \"" << needle << "\"";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error message was: " << e.what();
  }
}

// ---------------------------------------------------------------------------
// StageVerifier
// ---------------------------------------------------------------------------

StageVerifier make_verifier(int p = 4, int blocks = 8) {
  std::vector<CoreId> cores(p);
  for (int r = 0; r < p; ++r) cores[r] = r;  // one rank per core
  return StageVerifier(p, blocks, std::move(cores));
}

TEST(StageVerifier, AcceptsAWellFormedSchedule) {
  StageVerifier v = make_verifier();
  v.on_begin_stage();
  v.on_transfer(0, 0, 1, 0, 2, /*combining=*/false);
  v.on_transfer(1, 0, 0, 0, 1, /*combining=*/false);
  v.on_end_stage();
  v.on_begin_stage();
  v.on_transfer(2, 4, 3, 4, 4, /*combining=*/false);
  v.on_end_stage();
  EXPECT_EQ(v.stages_verified(), 2);
}

TEST(StageVerifier, ProtocolViolations) {
  StageVerifier v = make_verifier();
  expect_error_containing([&] { v.on_transfer(0, 0, 1, 0, 1, false); },
                          "[protocol]");
  expect_error_containing([&] { v.on_end_stage(); }, "[protocol]");
  v.on_begin_stage();
  expect_error_containing([&] { v.on_begin_stage(); }, "[protocol]");
}

TEST(StageVerifier, BoundsViolations) {
  StageVerifier v = make_verifier(4, 8);
  v.on_begin_stage();
  expect_error_containing([&] { v.on_transfer(0, 0, 4, 0, 1, false); },
                          "[bounds]");  // dst rank outside communicator
  expect_error_containing([&] { v.on_transfer(-1, 0, 1, 0, 1, false); },
                          "[bounds]");  // negative src rank
  expect_error_containing([&] { v.on_transfer(0, 7, 1, 0, 2, false); },
                          "[bounds]");  // source range overflows the buffer
  expect_error_containing([&] { v.on_transfer(0, 0, 1, 8, 1, false); },
                          "[bounds]");  // destination offset past the end
  expect_error_containing([&] { v.on_transfer(0, 0, 1, 0, 0, false); },
                          "[bounds]");  // zero blocks
}

TEST(StageVerifier, WriteWriteConflictWithinAStage) {
  StageVerifier v = make_verifier();
  v.on_begin_stage();
  v.on_transfer(0, 0, 2, 3, 1, false);
  expect_error_containing([&] { v.on_transfer(1, 0, 2, 3, 1, false); },
                          "write-write conflict");
}

TEST(StageVerifier, WriteCombineConflictWithinAStage) {
  StageVerifier v = make_verifier();
  v.on_begin_stage();
  v.on_transfer(0, 0, 2, 3, 1, /*combining=*/false);
  expect_error_containing([&] { v.on_transfer(1, 0, 2, 3, 1, true); },
                          "write-combine conflict");
}

TEST(StageVerifier, CombineCombineIsLegal) {
  // The combine op is commutative+associative, so two combines into the
  // same destination block within a stage are deterministic.
  StageVerifier v = make_verifier();
  v.on_begin_stage();
  v.on_transfer(0, 0, 2, 3, 1, /*combining=*/true);
  v.on_transfer(1, 0, 2, 3, 1, /*combining=*/true);
  v.on_end_stage();
  EXPECT_EQ(v.stages_verified(), 1);
}

TEST(StageVerifier, ConflictStateResetsBetweenStages) {
  // Writing the same destination block in two *different* stages is the
  // normal case, not a conflict.
  StageVerifier v = make_verifier();
  for (int s = 0; s < 3; ++s) {
    v.on_begin_stage();
    v.on_transfer(0, 0, 1, 0, 1, false);
    v.on_end_stage();
  }
  EXPECT_EQ(v.stages_verified(), 3);
}

TEST(StageVerifier, SharedCoreTransferIsAPricingBug) {
  // Two distinct ranks pinned to the same physical core: a transfer between
  // them would be priced as a remote message for a physically local copy.
  StageVerifier v(2, 4, std::vector<CoreId>{7, 7});
  v.on_begin_stage();
  expect_error_containing([&] { v.on_transfer(0, 0, 1, 0, 1, false); },
                          "[pricing]");
}

TEST(StageVerifier, SelfCopyOnOneRankIsFine) {
  // src == dst is a local buffer move, legal regardless of core sharing.
  StageVerifier v(2, 4, std::vector<CoreId>{7, 7});
  v.on_begin_stage();
  v.on_transfer(0, 0, 0, 1, 1, false);
  v.on_end_stage();
  EXPECT_EQ(v.stages_verified(), 1);
}

TEST(StageVerifier, EmptyStageIsAProgressBug) {
  StageVerifier v = make_verifier();
  v.on_begin_stage();
  expect_error_containing([&] { v.on_end_stage(); }, "[progress]");
}

// ---------------------------------------------------------------------------
// MappingVerifier
// ---------------------------------------------------------------------------

TEST(MappingVerifier, AcceptsABijectionOnASparseSlotUniverse) {
  // Slot ids need not be dense — a communicator can occupy a subset of the
  // machine's cores.
  const std::vector<int> input{10, 3, 42, 7};
  const std::vector<int> result{42, 7, 10, 3};
  EXPECT_NO_THROW(verify_mapping("test", input, result));
  EXPECT_NO_THROW(verify_mapping("test", input, input));  // identity
}

TEST(MappingVerifier, RejectsSizeMismatch) {
  expect_error_containing(
      [] { verify_mapping("RDMH", {1, 2, 3}, {1, 2}); },
      "mapping invariant violated [RDMH]");
}

TEST(MappingVerifier, RejectsSlotOutsideTheUniverse) {
  expect_error_containing(
      [] { verify_mapping("RMH", {1, 2, 3}, {1, 2, 99}); },
      "outside the slot universe");
}

TEST(MappingVerifier, RejectsDuplicateAssignment) {
  expect_error_containing(
      [] { verify_mapping("BGMH", {1, 2, 3}, {1, 2, 2}); },
      "not a bijection");
}

TEST(MappingVerifier, RejectsDuplicateInputSlot) {
  expect_error_containing(
      [] { verify_mapping("BBMH", {5, 5, 3}, {5, 5, 3}); },
      "hosts more than one rank");
}

TEST(MappingVerifier, HierarchicalCompositionDelegates) {
  EXPECT_NO_THROW(verify_hierarchical_composition({0, 1, 2, 3}, {2, 3, 0, 1}));
  expect_error_containing(
      [] { verify_hierarchical_composition({0, 1, 2, 3}, {2, 3, 0, 0}); },
      "hierarchical composition");
}

TEST(MappingVerifier, CheckedMapCatchesABrokenMapper) {
  // A deliberately broken Mapper: returns the first slot for every rank.
  class BrokenMapper final : public mapping::Mapper {
   public:
    std::string name() const override { return "broken"; }
    std::vector<int> map(const std::vector<int>& rank_to_slot,
                         const topology::DistanceMatrix&,
                         Rng&) const override {
      return std::vector<int>(rank_to_slot.size(), rank_to_slot.at(0));
    }
  };
  const Machine m = Machine::gpc(1);
  const topology::DistanceMatrix d = topology::extract_distances(m, {});
  Rng rng(1);
  const std::vector<int> slots{0, 1, 2, 3};
  expect_error_containing(
      [&] { BrokenMapper{}.checked_map(slots, d, rng); },
      "mapping invariant violated [broken]");
}

TEST(MappingVerifier, RealHeuristicsPassTheCheckedPath) {
  const Machine m = Machine::gpc(2);
  const topology::DistanceMatrix d = topology::extract_distances(m, {});
  Rng rng(7);
  std::vector<int> slots(16);
  for (int i = 0; i < 16; ++i) slots[i] = i;
  for (const auto pattern :
       {mapping::Pattern::RecursiveDoubling, mapping::Pattern::Ring,
        mapping::Pattern::BinomialBcast, mapping::Pattern::BinomialGather,
        mapping::Pattern::Bruck}) {
    const auto mapper = mapping::make_heuristic(pattern);
    EXPECT_NO_THROW(mapper->checked_map(slots, d, rng)) << mapper->name();
  }
}

// ---------------------------------------------------------------------------
// CollectiveAuditor (synthetic block layouts, no engine)
// ---------------------------------------------------------------------------

/// Reader over an explicit (rank, block) -> tag matrix.
BlockReader matrix_reader(const std::vector<std::vector<std::uint32_t>>& m) {
  return [m](Rank r, int b) { return m.at(r).at(b); };
}

TEST(CollectiveAuditor, AllgatherAcceptAndReject) {
  const std::vector<std::vector<std::uint32_t>> good{{0, 1}, {0, 1}};
  EXPECT_NO_THROW(CollectiveAuditor(2, matrix_reader(good)).expect_allgather());
  const std::vector<std::vector<std::uint32_t>> bad{{0, 1}, {1, 0}};
  expect_error_containing(
      [&] { CollectiveAuditor(2, matrix_reader(bad)).expect_allgather(); },
      "allgather contract violated");
}

TEST(CollectiveAuditor, GatherOnlyAuditsTheRoot) {
  // Non-root buffers are scratch; only rank 0 must hold 0..p-1 in order.
  const std::vector<std::vector<std::uint32_t>> good{{0, 1, 2}, {9, 9, 9},
                                                     {9, 9, 9}};
  EXPECT_NO_THROW(CollectiveAuditor(3, matrix_reader(good)).expect_gather());
  const std::vector<std::vector<std::uint32_t>> bad{{0, 2, 1}, {9, 9, 9},
                                                    {9, 9, 9}};
  expect_error_containing(
      [&] { CollectiveAuditor(3, matrix_reader(bad)).expect_gather(); },
      "gather contract violated");
}

TEST(CollectiveAuditor, BcastAcceptAndReject) {
  const std::vector<std::vector<std::uint32_t>> good{{7u}, {7u}, {7u}};
  EXPECT_NO_THROW(
      CollectiveAuditor(3, matrix_reader(good)).expect_bcast(7u));
  expect_error_containing(
      [&] { CollectiveAuditor(3, matrix_reader(good)).expect_bcast(8u); },
      "bcast contract violated");
}

TEST(CollectiveAuditor, ScatterFollowsTheReordering) {
  // p = 2 with oldrank = {1, 0}: new rank 0 must hold tag 1, new rank 1
  // tag 0, each in its own diagonal slot.
  const std::vector<std::vector<std::uint32_t>> good{{1, 9}, {9, 0}};
  EXPECT_NO_THROW(
      CollectiveAuditor(2, matrix_reader(good)).expect_scatter({1, 0}));
  expect_error_containing(
      [&] { CollectiveAuditor(2, matrix_reader(good)).expect_scatter({0, 1}); },
      "scatter contract violated");
}

TEST(CollectiveAuditor, AlltoallUsesTheTagCallback) {
  // tag(i, o) = 16*i + o; receive slots start at block p = 2.
  const auto tag = [](Rank i, Rank o) {
    return static_cast<std::uint32_t>(16 * i + o);
  };
  const std::vector<std::vector<std::uint32_t>> good{
      {9, 9, tag(0, 0), tag(1, 0)}, {9, 9, tag(0, 1), tag(1, 1)}};
  EXPECT_NO_THROW(CollectiveAuditor(2, matrix_reader(good))
                      .expect_alltoall({0, 1}, /*recv_base=*/2, tag));
  expect_error_containing(
      [&] {
        CollectiveAuditor(2, matrix_reader(good))
            .expect_alltoall({1, 0}, /*recv_base=*/2, tag);
      },
      "alltoall contract violated");
}

// ---------------------------------------------------------------------------
// Engine adapters
// ---------------------------------------------------------------------------

TEST(AuditEngine, PassesAfterARealAllgatherAndCatchesCorruption) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 8, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, 8);
  collectives::run_allgather(
      eng, collectives::AllgatherOptions{
               collectives::AllgatherAlgo::RecursiveDoubling,
               collectives::OrderFix::None});
  EXPECT_NO_THROW(audit_allgather(eng));

  eng.set_block(3, 5, 0xdeadu);  // simulate a miscompiled schedule
  expect_error_containing([&] { audit_allgather(eng); },
                          "allgather contract violated: rank 3 block 5");
}

TEST(AuditEngine, RejectsTimedModeEngines) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 4, LayoutSpec{}));
  const Engine eng(comm, simmpi::CostConfig{}, ExecMode::Timed, 64, 4);
  expect_error_containing([&] { make_auditor(eng); },
                          "requires a Data-mode engine");
}

// ---------------------------------------------------------------------------
// Engine integration of the StageVerifier (slow-check builds only)
// ---------------------------------------------------------------------------

TEST(EngineSlowChecks, EmptyStageRejectedWhenEnabled) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 2, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, 4);
  eng.begin_stage();
  if constexpr (kSlowChecksEnabled) {
    expect_error_containing([&] { eng.end_stage(); }, "[progress]");
  } else {
    EXPECT_NO_THROW(eng.end_stage());
  }
}

TEST(EngineSlowChecks, WriteWriteConflictRejectedWhenEnabled) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 4, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, 4);
  eng.begin_stage();
  eng.copy(0, 0, 2, 1, 1);
  if constexpr (kSlowChecksEnabled) {
    expect_error_containing([&] { eng.copy(1, 0, 2, 1, 1); },
                            "write-write conflict");
  } else {
    eng.copy(1, 0, 2, 1, 1);
    EXPECT_NO_THROW(eng.end_stage());
  }
}

TEST(EngineSlowChecks, WellFormedCollectivesStillRunGreen) {
  // Representative end-to-end run in whichever configuration this binary
  // was built: a reordered ring allgather must pass both the per-stage
  // verifier (if enabled) and the final audit.
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, 16);
  collectives::run_allgather(
      eng, collectives::AllgatherOptions{collectives::AllgatherAlgo::Ring,
                                         collectives::OrderFix::EndShuffle});
  EXPECT_NO_THROW(audit_allgather(eng));
}

// ---------------------------------------------------------------------------
// TARR_CHECK_SLOW macro tier
// ---------------------------------------------------------------------------

TEST(SlowCheckMacro, FiresOnlyInSlowBuilds) {
  if constexpr (kSlowChecksEnabled) {
    EXPECT_THROW(TARR_CHECK_SLOW(false, "slow check fired"), Error);
  } else {
    // Compiled out: the condition must not even be evaluated.
    bool evaluated = false;
    TARR_CHECK_SLOW([&] {
      evaluated = true;
      return false;
    }(),
                    "never");
    EXPECT_FALSE(evaluated);
  }
  EXPECT_NO_THROW(TARR_CHECK_SLOW(true, "fine"));
}

// ---------------------------------------------------------------------------
// Permutation helper error paths (companions of the mapping verifier)
// ---------------------------------------------------------------------------

TEST(PermutationErrors, InvertRejectsNonPermutations) {
  EXPECT_THROW(invert_permutation({0, 2, 2}), Error);   // duplicate
  EXPECT_THROW(invert_permutation({0, 1, 5}), Error);   // out of range
  EXPECT_THROW(invert_permutation({-1, 1, 0}), Error);  // negative
}

TEST(PermutationErrors, ComposeRejectsSizeMismatch) {
  EXPECT_THROW(compose_permutations({0, 1, 2}, {0, 1}), Error);
  EXPECT_THROW(compose_permutations({}, {0}), Error);
}

}  // namespace
}  // namespace tarr::check
