// Transient-fault injection: retry/timeout pricing, determinism, mode
// parity, and the bit-identical fault-free path.

#include "simmpi/transient.hpp"

#include <gtest/gtest.h>

#include "collectives/allgather.hpp"
#include "collectives/orderfix.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"

namespace tarr::simmpi {
namespace {

using topology::Machine;

/// Runs a recursive-doubling allgather and returns the engine total.
Usec run_rd(const Communicator& comm, ExecMode mode,
            const TransientFaultConfig* faults,
            TransientFaultStats* stats_out = nullptr) {
  const int p = comm.size();
  Engine eng(comm, CostConfig{}, mode, 512, p);
  if (faults) eng.set_transient_faults(*faults);
  collectives::run_allgather(
      eng,
      {collectives::AllgatherAlgo::RecursiveDoubling,
       collectives::OrderFix::None},
      identity_permutation(p));
  if (mode == ExecMode::Data) collectives::check_allgather_output(eng);
  if (stats_out) *stats_out = eng.transient_stats();
  return eng.total();
}

TEST(Transient, ZeroProbabilityConfigIsBitIdenticalToNoConfig) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 8, {}));
  TransientFaultConfig zero;  // all probabilities default to 0
  EXPECT_FALSE(zero.enabled());
  const Usec plain = run_rd(comm, ExecMode::Timed, nullptr);
  const Usec armed = run_rd(comm, ExecMode::Timed, &zero);
  EXPECT_EQ(plain, armed);  // exact, not approximate

  Engine eng(comm, CostConfig{}, ExecMode::Timed, 512, 8);
  eng.set_transient_faults(zero);
  EXPECT_FALSE(eng.transient_faults_enabled());
}

TEST(Transient, TimedAndDataModesPriceFaultsIdentically) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 8, {}));
  TransientFaultConfig cfg;
  cfg.drop_prob = 0.2;
  cfg.corrupt_prob = 0.1;
  cfg.seed = 99;
  const Usec timed = run_rd(comm, ExecMode::Timed, &cfg);
  const Usec data = run_rd(comm, ExecMode::Data, &cfg);
  EXPECT_EQ(timed, data);  // identical draw order -> identical pricing
}

TEST(Transient, DeterministicGivenSeed) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 8, {}));
  TransientFaultConfig cfg;
  cfg.drop_prob = 0.3;
  cfg.seed = 7;
  TransientFaultStats s1, s2;
  const Usec t1 = run_rd(comm, ExecMode::Timed, &cfg, &s1);
  const Usec t2 = run_rd(comm, ExecMode::Timed, &cfg, &s2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(s1.attempts, s2.attempts);
  EXPECT_EQ(s1.drops, s2.drops);
  EXPECT_EQ(s1.retransmissions, s2.retransmissions);
}

TEST(Transient, FaultsNeverMakeRunsCheaper) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 8, {}));
  const Usec clean = run_rd(comm, ExecMode::Timed, nullptr);
  TransientFaultConfig cfg;
  cfg.drop_prob = 0.25;
  cfg.corrupt_prob = 0.1;
  cfg.seed = 3;
  TransientFaultStats stats;
  const Usec faulty = run_rd(comm, ExecMode::Timed, &cfg, &stats);
  EXPECT_GT(stats.retransmissions, 0);
  EXPECT_GT(faulty, clean);
}

TEST(Transient, PayloadsAlwaysDeliveredCorrectly) {
  // Data-mode correctness is checked inside run_rd via
  // check_allgather_output: retries deliver every block despite faults.
  const Machine m = Machine::gpc(3);
  const Communicator comm(m, make_layout(m, 16, {}));
  TransientFaultConfig cfg;
  cfg.drop_prob = 0.3;
  cfg.corrupt_prob = 0.2;
  cfg.seed = 21;
  run_rd(comm, ExecMode::Data, &cfg);
}

TEST(Transient, StatsAreInternallyConsistent) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 8, {}));
  TransientFaultConfig cfg;
  cfg.drop_prob = 0.25;
  cfg.corrupt_prob = 0.15;
  cfg.seed = 5;
  TransientFaultStats stats;
  run_rd(comm, ExecMode::Timed, &cfg, &stats);
  // Every failed attempt is exactly one drop or one corruption.
  EXPECT_EQ(stats.retransmissions, stats.drops + stats.corruptions);
  EXPECT_GT(stats.attempts, stats.retransmissions);
  if (stats.drops > 0) EXPECT_GT(stats.timeout_wait, 0.0);
  EXPECT_GT(stats.retransmitted_bytes, 0);
  EXPECT_NE(stats.describe().find("attempts"), std::string::npos);
}

TEST(Transient, ExhaustedRetriesThrowWithGuidance) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 4, {}));
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 64, 4);
  TransientFaultConfig cfg;
  cfg.drop_prob = 1.0;  // never delivers
  cfg.max_attempts = 3;
  eng.set_transient_faults(cfg);
  eng.begin_stage();
  try {
    eng.copy(0, 0, 3, 0, 1);
    FAIL() << "expected exhaustion error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("FaultMask"), std::string::npos);
  }
}

TEST(Transient, ConfigValidation) {
  TransientFaultConfig cfg;
  cfg.drop_prob = -0.1;
  EXPECT_THROW(validate(cfg), Error);
  cfg = {};
  cfg.corrupt_prob = 1.5;
  EXPECT_THROW(validate(cfg), Error);
  cfg = {};
  cfg.drop_prob = 0.6;
  cfg.corrupt_prob = 0.6;  // sum > 1
  EXPECT_THROW(validate(cfg), Error);
  cfg = {};
  cfg.max_attempts = 0;
  EXPECT_THROW(validate(cfg), Error);
  cfg = {};
  cfg.retry_timeout = -1.0;
  EXPECT_THROW(validate(cfg), Error);
  cfg = {};
  cfg.backoff = 0.5;
  EXPECT_THROW(validate(cfg), Error);
  EXPECT_NO_THROW(validate(TransientFaultConfig{}));
}

TEST(Transient, MustBeArmedBeforeFirstStage) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 2, {}));
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 4, 2);
  eng.begin_stage();
  eng.copy(0, 0, 1, 0, 1);
  eng.end_stage();
  TransientFaultConfig cfg;
  cfg.drop_prob = 0.1;
  EXPECT_THROW(eng.set_transient_faults(cfg), Error);
}

}  // namespace
}  // namespace tarr::simmpi
