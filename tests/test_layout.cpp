#include "simmpi/layout.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace tarr::simmpi {
namespace {

using topology::Machine;

TEST(LayoutSpec, Names) {
  EXPECT_EQ(to_string(LayoutSpec{NodeOrder::Block, SocketOrder::Bunch}),
            "block-bunch");
  EXPECT_EQ(to_string(LayoutSpec{NodeOrder::Cyclic, SocketOrder::Scatter}),
            "cyclic-scatter");
  EXPECT_EQ(all_layouts().size(), 4u);
}

struct LayoutCase {
  LayoutSpec spec;
  int p;
};

class LayoutProperties
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LayoutProperties, CoresAreDistinctAndValid) {
  const auto [spec_idx, nodes, p] = GetParam();
  const Machine m = Machine::gpc(nodes);
  if (p > m.total_cores()) GTEST_SKIP();
  const LayoutSpec spec = all_layouts()[spec_idx];
  const auto layout = make_layout(m, p, spec);
  ASSERT_EQ(static_cast<int>(layout.size()), p);
  std::set<CoreId> seen(layout.begin(), layout.end());
  EXPECT_EQ(static_cast<int>(seen.size()), p);
  for (CoreId c : layout) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, m.total_cores());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LayoutProperties,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 7, 8, 16, 61, 64)));

TEST(Layout, BlockFillsNodesInOrder) {
  const Machine m = Machine::gpc(4);
  const auto layout =
      make_layout(m, 32, LayoutSpec{NodeOrder::Block, SocketOrder::Bunch});
  for (Rank r = 0; r < 32; ++r) {
    EXPECT_EQ(m.node_of_core(layout[r]), r / 8);
  }
  // Bunch: first four ranks of a node on socket 0.
  EXPECT_EQ(m.socket_of_core(layout[0]), 0);
  EXPECT_EQ(m.socket_of_core(layout[3]), 0);
  EXPECT_EQ(m.socket_of_core(layout[4]), 1);
}

TEST(Layout, BlockScatterAlternatesSockets) {
  const Machine m = Machine::gpc(2);
  const auto layout =
      make_layout(m, 16, LayoutSpec{NodeOrder::Block, SocketOrder::Scatter});
  for (Rank r = 0; r < 16; ++r) {
    EXPECT_EQ(m.socket_of_core(layout[r]), r % 2);
  }
}

TEST(Layout, CyclicRoundRobinsNodes) {
  const Machine m = Machine::gpc(4);
  const auto layout =
      make_layout(m, 32, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Bunch});
  for (Rank r = 0; r < 32; ++r) {
    EXPECT_EQ(m.node_of_core(layout[r]), r % 4);
  }
  // The first full round lands on each node's first core (socket 0).
  for (Rank r = 0; r < 4; ++r) EXPECT_EQ(m.socket_of_core(layout[r]), 0);
}

TEST(Layout, CyclicScatterCombination) {
  const Machine m = Machine::gpc(2);
  const auto layout =
      make_layout(m, 16, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Scatter});
  // rank -> node r%2, k = r/2; socket = k%2.
  for (Rank r = 0; r < 16; ++r) {
    EXPECT_EQ(m.node_of_core(layout[r]), r % 2);
    EXPECT_EQ(m.socket_of_core(layout[r]), (r / 2) % 2);
  }
}

TEST(Layout, CyclicUsesOnlyNeededNodes) {
  const Machine m = Machine::gpc(8);
  // 16 ranks on 8-core nodes -> exactly 2 nodes used.
  const auto layout =
      make_layout(m, 16, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Bunch});
  std::set<NodeId> nodes;
  for (CoreId c : layout) nodes.insert(m.node_of_core(c));
  EXPECT_EQ(nodes.size(), 2u);
}

TEST(Layout, RejectsOversubscription) {
  const Machine m = Machine::gpc(1);
  EXPECT_THROW(make_layout(m, 9, LayoutSpec{}), Error);
  EXPECT_THROW(make_layout(m, 0, LayoutSpec{}), Error);
}

}  // namespace
}  // namespace tarr::simmpi
