#include "topology/direct.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "topology/machine.hpp"
#include "topology/routing.hpp"

namespace tarr::topology {
namespace {

int count_kind(const SwitchGraph& g, VertexKind k) {
  int n = 0;
  for (int v = 0; v < g.num_vertices(); ++v)
    if (g.vertex(v).kind == k) ++n;
  return n;
}

TEST(Torus, ShapeAndDegree) {
  const SwitchGraph g = build_torus_network(4, 4, 4);
  EXPECT_EQ(count_kind(g, VertexKind::Switch), 64);
  EXPECT_EQ(g.num_hosts(), 64);
  // 3 links per router per dimension pair: 64 routers * 3 dims = 192 torus
  // links + 64 host links.
  EXPECT_EQ(g.num_links(), 192 + 64);
  // Every router has degree 7 (6 neighbors + 1 host).
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (g.vertex(v).kind == VertexKind::Switch) {
      EXPECT_EQ(g.incident(v).size(), 7u);
    }
  }
}

TEST(Torus, HopCountsMatchManhattanWithWraparound) {
  const SwitchGraph g = build_torus_network(4, 4, 1);
  const Router r(g);
  // Node ids: (i*4+j) for z=1.  Host->router adds 2 hops to any route.
  EXPECT_EQ(r.hops(0, 1), 1 + 1 + 1);   // one torus hop
  EXPECT_EQ(r.hops(0, 3), 1 + 1 + 1);   // wraparound: distance 1
  EXPECT_EQ(r.hops(0, 2), 1 + 2 + 1);   // distance 2
  EXPECT_EQ(r.hops(0, 5), 1 + 2 + 1);   // (1,1): manhattan 2
  EXPECT_EQ(r.hops(0, 10), 1 + 4 + 1);  // (2,2): 2+2
}

TEST(Torus, DegenerateDimensions) {
  const SwitchGraph line = build_torus_network(5, 1, 1);
  EXPECT_EQ(line.num_hosts(), 5);
  const Router r(line);
  EXPECT_EQ(r.hops(0, 2), 1 + 2 + 1);
  // Size-2 dimension: single link, no double edge.
  const SwitchGraph pair = build_torus_network(2, 1, 1);
  EXPECT_EQ(pair.num_links(), 1 + 2);
  EXPECT_THROW(build_torus_network(0, 1, 1), Error);
}

TEST(Dragonfly, ShapeAndConnectivity) {
  const DragonflyConfig cfg;  // 9 groups x 4 routers x 2 hosts
  const SwitchGraph g = build_dragonfly_network(72, cfg);
  EXPECT_EQ(g.num_hosts(), 72);
  EXPECT_EQ(count_kind(g, VertexKind::Switch), 36);
  // Links: per group C(4,2)=6 local -> 54; C(9,2)=36 global; 72 host links.
  EXPECT_EQ(g.num_links(), 54 + 36 + 72);
}

TEST(Dragonfly, DiameterIsSmall) {
  const SwitchGraph g = build_dragonfly_network(72);
  const Router r(g);
  // Max route: host-router(1) local(1) global(1) local(1) router-host(1).
  int max_hops = 0;
  for (NodeId a = 0; a < 72; a += 5)
    for (NodeId b = 0; b < 72; b += 7)
      if (a != b) max_hops = std::max(max_hops, r.hops(a, b));
  EXPECT_LE(max_hops, 5 + 2);  // allow one extra local detour
  EXPECT_GE(max_hops, 4);
}

TEST(Dragonfly, SameRouterIsTwoHops) {
  const SwitchGraph g = build_dragonfly_network(72);
  const Router r(g);
  EXPECT_EQ(r.hops(0, 1), 2);  // share a router
  EXPECT_EQ(r.hops(0, 2), 3);  // same group, neighbor router
}

TEST(Dragonfly, ValidatesParameters) {
  DragonflyConfig bad;
  bad.groups = 20;
  bad.routers_per_group = 2;
  bad.global_per_router = 1;  // 19 > 2 global ports
  EXPECT_THROW(build_dragonfly_network(10, bad), Error);
  EXPECT_THROW(build_dragonfly_network(0), Error);
  EXPECT_THROW(build_dragonfly_network(1000), Error);
}

TEST(DirectNetworks, WorkAsMachines) {
  // The whole stack (machine, distances, router) runs on direct networks.
  const Machine torus(NodeShape{}, build_torus_network(3, 3, 3));
  EXPECT_EQ(torus.total_cores(), 27 * 8);
  EXPECT_GT(torus.network_hops_between_cores(0, torus.total_cores() - 1), 0);

  const Machine dfly(NodeShape{}, build_dragonfly_network(72));
  EXPECT_EQ(dfly.total_cores(), 72 * 8);
  EXPECT_EQ(dfly.network_hops_between_cores(0, 8), 2);
}

}  // namespace
}  // namespace tarr::topology
