#include "topology/machine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tarr::topology {
namespace {

TEST(NodeShape, CoreLocation) {
  const NodeShape s{2, 4};
  EXPECT_EQ(s.cores_per_node(), 8);
  EXPECT_EQ(core_location(s, 0).socket, 0);
  EXPECT_EQ(core_location(s, 3).socket, 0);
  EXPECT_EQ(core_location(s, 4).socket, 1);
  EXPECT_EQ(core_location(s, 7).socket, 1);
  EXPECT_EQ(core_location(s, 5).core_in_socket, 1);
  EXPECT_THROW(core_location(s, 8), Error);
}

TEST(NodeShape, IntranodeDistance) {
  const NodeShape s{2, 4};
  EXPECT_EQ(intranode_distance(s, 2, 2), 0);
  EXPECT_EQ(intranode_distance(s, 0, 3), 1);
  EXPECT_EQ(intranode_distance(s, 0, 4), 2);
  EXPECT_EQ(intranode_distance(s, 7, 6), 1);
}

TEST(Machine, CoreNumberingRoundtrip) {
  const Machine m = Machine::gpc(4);
  EXPECT_EQ(m.num_nodes(), 4);
  EXPECT_EQ(m.cores_per_node(), 8);
  EXPECT_EQ(m.total_cores(), 32);
  for (CoreId c = 0; c < m.total_cores(); ++c) {
    EXPECT_EQ(m.core_id(m.node_of_core(c), m.local_core(c)), c);
  }
  EXPECT_EQ(m.node_of_core(0), 0);
  EXPECT_EQ(m.node_of_core(7), 0);
  EXPECT_EQ(m.node_of_core(8), 1);
  EXPECT_EQ(m.socket_of_core(3), 0);
  EXPECT_EQ(m.socket_of_core(4), 1);
  EXPECT_EQ(m.socket_of_core(12), 1);
}

TEST(Machine, CustomShape) {
  const Machine m = Machine::single_switch(3, NodeShape{4, 2});
  EXPECT_EQ(m.cores_per_node(), 8);
  EXPECT_EQ(m.socket_of_core(2), 1);
  EXPECT_EQ(m.socket_of_core(6), 3);
}

TEST(Machine, NetworkHopsBetweenCores) {
  const Machine m = Machine::gpc(60);
  EXPECT_EQ(m.network_hops_between_cores(0, 7), 0);     // same node
  EXPECT_EQ(m.network_hops_between_cores(0, 8), 2);     // same leaf
  EXPECT_EQ(m.network_hops_between_cores(0, 30 * 8), 4);  // next leaf
}

TEST(Machine, OutOfRangeRejected) {
  const Machine m = Machine::gpc(2);
  EXPECT_THROW(m.node_of_core(16), Error);
  EXPECT_THROW(m.core_id(2, 0), Error);
  EXPECT_THROW(m.core_id(0, 8), Error);
}

TEST(Machine, DescribeMentionsScale) {
  const Machine m = Machine::gpc(3);
  const std::string d = m.describe();
  EXPECT_NE(d.find("3 nodes"), std::string::npos);
  EXPECT_NE(d.find("24 cores"), std::string::npos);
}

}  // namespace
}  // namespace tarr::topology
