// tarr::prof: exact scope-tree arithmetic, same-seed byte-identity of the
// counter exports (including under transient faults), zero perturbation of
// simulated results, disabled-path no-ops, the counting-allocator hook, the
// MetricsRegistry bridge, and speedscope JSON well-formedness.

#include "prof/prof.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "collectives/allgather.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"
#include "core/refine.hpp"
#include "fault/campaign.hpp"
#include "simmpi/layout.hpp"
#include "topology/machine.hpp"
#include "trace/tracer.hpp"

namespace tarr::prof {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator so the speedscope test needs no external
// parser (same approach as test_trace.cpp).

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

int count_occurrences(const std::string& hay, const std::string& needle) {
  int n = 0;
  for (std::size_t p = hay.find(needle); p != std::string::npos;
       p = hay.find(needle, p + needle.size()))
    ++n;
  return n;
}

/// Build the small reference tree used by several tests:
///   a (x+=3) -> b (x+=2, y+=1), then a again (x+=5), plus root z+=7.
Profiler small_tree() {
  Profiler p;
  p.enter("a");
  p.count("x", 3);
  p.enter("b");
  p.count("x", 2);
  p.count("y", 1);
  p.exit_scope();
  p.exit_scope();
  p.enter("a");
  p.count("x", 5);
  p.exit_scope();
  p.count("z", 7);  // no open scope: charged to the root
  return p;
}

// ---------------------------------------------------------------------------
// Exact scope-tree arithmetic.

TEST(Profiler, AggregatesRepeatedScopesByParentAndName) {
  const Profile s = small_tree().snapshot();

  ASSERT_EQ(s.entries.size(), 3u);  // (root), a, a/b — not a second 'a'
  EXPECT_EQ(s.entries[0].name, "(root)");
  EXPECT_EQ(s.entries[0].path, "");
  EXPECT_EQ(s.entries[0].depth, 0);
  EXPECT_EQ(s.entries[0].calls, 1);

  const ProfileEntry* a = s.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->calls, 2);  // both ProfScope("a") entries accumulated
  EXPECT_EQ(a->depth, 1);
  EXPECT_EQ(a->parent, 0);

  const ProfileEntry* b = s.find("a/b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->calls, 1);
  EXPECT_EQ(b->depth, 2);
  EXPECT_EQ(s.entries[b->parent].path, "a");
}

TEST(Profiler, SelfAndTotalAreExactSums) {
  const Profile s = small_tree().snapshot();
  const ProfileEntry* a = s.find("a");
  const ProfileEntry* b = s.find("a/b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  // Named counters: self at the charging scope, totals include the subtree.
  EXPECT_EQ(a->counters.at("x").self, 8.0);    // 3 + 5
  EXPECT_EQ(a->counters.at("x").total, 10.0);  // + b's 2
  EXPECT_EQ(b->counters.at("x").self, 2.0);
  EXPECT_EQ(b->counters.at("y").total, 1.0);
  EXPECT_EQ(s.entries[0].counters.at("z").self, 7.0);
  EXPECT_EQ(s.entries[0].counters.at("x").self, 0.0);
  EXPECT_EQ(s.entries[0].counters.at("x").total, 10.0);

  // The aggregate "work" metric sums every counter delta.
  EXPECT_EQ(a->work_self, 8.0);
  EXPECT_EQ(b->work_self, 3.0);
  EXPECT_EQ(a->work_total, 11.0);
  EXPECT_EQ(s.entries[0].work_total, 18.0);  // 11 in the tree + 7 at root

  // total == self + sum(child totals), exactly, for every entry.
  for (std::size_t i = 0; i < s.entries.size(); ++i) {
    double child_work = 0.0;
    for (const ProfileEntry& e : s.entries)
      if (e.parent == static_cast<int>(i)) child_work += e.work_total;
    EXPECT_EQ(s.entries[i].work_total, s.entries[i].work_self + child_work);
  }

  EXPECT_EQ(s.counter_total("x"), 10.0);
  EXPECT_EQ(s.counter_total("z"), 7.0);
  EXPECT_EQ(s.counter_total("nope"), 0.0);
}

TEST(Profiler, RecursionNestsInsteadOfDoubleCounting) {
  Profiler p;
  p.enter("r");
  p.count("w", 1);
  p.enter("r");  // recursive re-entry
  p.count("w", 1);
  p.exit_scope();
  p.exit_scope();
  const Profile s = p.snapshot();
  const ProfileEntry* outer = s.find("r");
  const ProfileEntry* inner = s.find("r/r");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->work_self, 1.0);
  EXPECT_EQ(outer->work_total, 2.0);
  EXPECT_EQ(inner->work_total, 1.0);
}

TEST(Profiler, MergeFoldsTreesByPath) {
  Profiler p1;
  p1.enter("a");
  p1.count("x", 1);
  p1.exit_scope();

  Profiler p2;
  p2.enter("a");
  p2.count("x", 2);
  p2.exit_scope();
  p2.enter("b");
  p2.count("y", 3);
  p2.exit_scope();

  p1.merge(p2);
  const Profile s = p1.snapshot();
  const ProfileEntry* a = s.find("a");
  const ProfileEntry* b = s.find("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->calls, 2);  // one call from each thread's profiler
  EXPECT_EQ(a->counters.at("x").self, 3.0);
  EXPECT_EQ(b->counters.at("y").self, 3.0);
  EXPECT_EQ(s.counter_total("x"), 3.0);
}

// ---------------------------------------------------------------------------
// Ambient (thread-local) plumbing.

TEST(Ambient, DisabledByDefaultAndNoOp) {
  ASSERT_EQ(thread_profiler(), nullptr);
  {
    ProfScope scope("ignored");  // must be a no-op, not a crash
    prof::count("ignored", 42.0);
  }
  EXPECT_EQ(thread_profiler(), nullptr);
}

TEST(Ambient, ScopedInstallerRestoresPrevious) {
  Profiler outer_prof;
  ScopedThreadProfiler outer(&outer_prof);
  EXPECT_EQ(thread_profiler(), &outer_prof);
  {
    Profiler inner_prof;
    ScopedThreadProfiler inner(&inner_prof);
    EXPECT_EQ(thread_profiler(), &inner_prof);
    ProfScope scope("s");
    prof::count("c", 2.0);
  }
  EXPECT_EQ(thread_profiler(), &outer_prof);
  EXPECT_EQ(outer_prof.snapshot().counter_total("c"), 0.0);
}

TEST(Ambient, ProfScopeCapturesProfilerAtConstruction) {
  Profiler p;
  set_thread_profiler(&p);
  {
    ProfScope scope("s");
    set_thread_profiler(nullptr);  // removed mid-scope: must still balance
    prof::count("after", 1.0);     // goes nowhere (ambient is now null)
  }
  EXPECT_EQ(p.open_scopes(), 0);
  const Profile s = p.snapshot();
  ASSERT_NE(s.find("s"), nullptr);
  EXPECT_EQ(s.counter_total("after"), 0.0);
}

// ---------------------------------------------------------------------------
// The instrumented pipeline: determinism and zero perturbation.

double run_objective() {
  const topology::Machine m = topology::Machine::gpc(4);
  const int p = m.total_cores();
  const simmpi::Communicator comm(
      m, simmpi::make_layout(m, p, simmpi::LayoutSpec{}));
  const auto objective = core::allgather_objective(
      collectives::AllgatherAlgo::RecursiveDoubling, 1024,
      collectives::OrderFix::None, simmpi::CostConfig{});
  return objective(comm, identity_permutation(p));
}

TEST(Determinism, ProfilingDoesNotPerturbSimulatedCosts) {
  const double bare = run_objective();
  Profiler profiler;
  double profiled = 0.0;
  {
    ScopedThreadProfiler guard(&profiler);
    profiled = run_objective();
  }
  EXPECT_EQ(bare, profiled);  // bitwise-equal latency
  // ... and the profiler actually saw the engine run.
  EXPECT_GT(profiler.snapshot().counter_total("cost.transfers_priced"), 0.0);
}

fault::CampaignConfig tiny_campaign() {
  fault::CampaignConfig cfg;
  cfg.num_nodes = 8;
  cfg.tree.nodes_per_leaf = 4;
  cfg.trials = 1;
  cfg.failure_counts = {0, 2};
  cfg.seed = 7;
  cfg.transient.drop_prob = 0.05;  // exercise the retransmission path
  return cfg;
}

TEST(Determinism, SameSeedCounterExportsAreByteIdentical) {
  // Warm-up outside any profiler so one-time lazy initialization (statics,
  // allocator pools) is not charged to the first profiled run.
  (void)fault::run_fault_campaign(tiny_campaign());

  std::string csv[2], folded[2], speedscope[2];
  for (int run = 0; run < 2; ++run) {
    Profiler profiler;
    {
      ScopedThreadProfiler guard(&profiler);
      (void)fault::run_fault_campaign(tiny_campaign());
    }
    const Profile s = profiler.snapshot();
    csv[run] = flat_csv(s);  // default: no wall columns
    folded[run] = collapsed_stacks(s, "work");
    speedscope[run] = speedscope_json(s, "work", "campaign");
    EXPECT_GT(s.counter_total("cost.transfers_priced"), 0.0);
  }
  EXPECT_EQ(csv[0], csv[1]);
  EXPECT_EQ(folded[0], folded[1]);
  EXPECT_EQ(speedscope[0], speedscope[1]);
}

// ---------------------------------------------------------------------------
// The counting allocator (tarr_prof_memhook is linked into this binary).

TEST(Memhook, TracksRequestedBytesPerScope) {
  ASSERT_TRUE(link_memhook());
  ASSERT_NE(detail::mem_source(), nullptr);

  Profiler profiler;
  {
    ScopedThreadProfiler guard(&profiler);
    ProfScope scope("alloc");
    std::vector<char> buf(1 << 16);
    buf[0] = 1;
    ASSERT_EQ(buf.size(), static_cast<std::size_t>(1 << 16));
  }
  const Profile s = profiler.snapshot();
  EXPECT_TRUE(s.mem_tracked);
  const ProfileEntry* e = s.find("alloc");
  ASSERT_NE(e, nullptr);
  EXPECT_GE(e->mem_bytes_total, 1 << 16);
  EXPECT_GE(e->mem_allocs_total, 1);
}

TEST(Memhook, AllocationCountersAreDeterministic) {
  ASSERT_TRUE(link_memhook());
  const auto body = [] {
    std::vector<std::string> v;
    for (int i = 0; i < 64; ++i) v.push_back(std::string(100, 'x'));
    ASSERT_EQ(v.size(), 64u);
  };
  body();  // warm-up
  std::string csv[2];
  for (int run = 0; run < 2; ++run) {
    Profiler profiler;
    {
      ScopedThreadProfiler guard(&profiler);
      ProfScope scope("alloc");
      body();
    }
    csv[run] = flat_csv(profiler.snapshot());
  }
  EXPECT_EQ(csv[0], csv[1]);
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(Export, FlatCsvSchemaAndContent) {
  const Profile s = small_tree().snapshot();
  const std::string csv = flat_csv(s);
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "path,depth,calls,metric,self,total");
  EXPECT_NE(csv.find("(root),0,1,work,"), std::string::npos);
  EXPECT_NE(csv.find("a,1,2,x,8,10"), std::string::npos);
  EXPECT_NE(csv.find("a/b,2,1,y,1,1"), std::string::npos);
  // Wall-clock rows only on request.
  EXPECT_EQ(csv.find("wall_seconds"), std::string::npos);
  ExportOptions wall;
  wall.include_wall = true;
  EXPECT_NE(flat_csv(s, wall).find("wall_seconds"), std::string::npos);
}

TEST(Export, CollapsedStacksWeightsBySelf) {
  const std::string folded = collapsed_stacks(small_tree().snapshot(), "work");
  EXPECT_NE(folded.find("(root);a 8\n"), std::string::npos);
  EXPECT_NE(folded.find("(root);a;b 3\n"), std::string::npos);
  EXPECT_NE(folded.find("(root) 7\n"), std::string::npos);
}

TEST(Export, SpeedscopeJsonIsWellFormedAndBalanced) {
  const std::string json =
      speedscope_json(small_tree().snapshot(), "work", "unit");
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("$schema"), std::string::npos);
  EXPECT_NE(json.find("evented"), std::string::npos);
  // Every open event has a matching close event.
  EXPECT_EQ(count_occurrences(json, "\"type\": \"O\""),
            count_occurrences(json, "\"type\": \"C\""));
  EXPECT_GT(count_occurrences(json, "\"type\": \"O\""), 0);
}

TEST(Export, PublishBridgesTotalsIntoMetricsRegistry) {
  trace::MetricsRegistry reg;
  publish(small_tree().snapshot(), reg);
  const std::string csv = reg.csv();
  EXPECT_NE(csv.find("counter,prof.x,,10,"), std::string::npos);
  EXPECT_NE(csv.find("counter,prof.z,,7,"), std::string::npos);
  EXPECT_NE(csv.find("counter,prof.scope.a.calls,,2,"), std::string::npos);
  EXPECT_NE(csv.find("counter,prof.scope.a.work,,11,"), std::string::npos);
}

TEST(Export, EnsureWritableFailsFastOnBadPaths) {
  EXPECT_THROW(trace::Tracer::ensure_writable("/nonexistent-dir/prof.csv"),
               Error);
  EXPECT_NO_THROW(
      trace::Tracer::ensure_writable(testing::TempDir() + "prof_probe.csv"));
}

}  // namespace
}  // namespace tarr::prof
