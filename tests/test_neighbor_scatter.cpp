// Tests for the neighbor-exchange allgather, the standalone scatter, and
// the engine's schedule introspection (stage observer).

#include <gtest/gtest.h>

#include "check/audit_engine.hpp"
#include "collectives/allgather.hpp"
#include "collectives/gather_bcast.hpp"
#include "collectives/neighbor.hpp"
#include "collectives/orderfix.hpp"
#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"
#include "core/framework.hpp"
#include "simmpi/layout.hpp"

namespace tarr::collectives {
namespace {

using core::ReorderFramework;
using simmpi::Communicator;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

class NeighborAllgather
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(NeighborAllgather, OutputInOriginalRankOrder) {
  const auto [p, reorder] = GetParam();
  const Machine m = Machine::gpc(std::max(1, (p + 7) / 8));
  if (p > m.total_cores()) GTEST_SKIP();
  const Communicator comm(
      m, make_layout(m, p,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Scatter}));
  Communicator use = comm;
  std::vector<Rank> oldrank = identity_permutation(p);
  if (reorder) {
    ReorderFramework fw(m);
    auto rc = fw.reorder(comm, mapping::Pattern::Ring);
    use = rc.comm;
    oldrank = rc.oldrank;
  }
  Engine eng(use, simmpi::CostConfig{}, ExecMode::Data, 48, p);
  run_allgather_neighbor(eng, oldrank);
  check_allgather_output(eng);
}

INSTANTIATE_TEST_SUITE_P(
    EvenSizes, NeighborAllgather,
    ::testing::Combine(::testing::Values(1, 2, 4, 6, 8, 10, 16, 30, 32, 64),
                       ::testing::Values(false, true)));

TEST(NeighborAllgatherShape, HalfTheStagesOfTheRing) {
  // The algorithm's selling point: p/2 stages instead of p-1.
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 16, 32);
  run_allgather_neighbor(eng);
  EXPECT_EQ(eng.stages_executed(), 16);  // p/2
}

TEST(NeighborAllgatherShape, RejectsOddSizes) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 5, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 16, 5);
  EXPECT_THROW(run_allgather_neighbor(eng), Error);
}

class ScatterCorrectness
    : public ::testing::TestWithParam<std::tuple<TreeAlgo, int, bool>> {};

TEST_P(ScatterCorrectness, EveryRankGetsItsBlock) {
  const auto [algo, p, reorder] = GetParam();
  const Machine m = Machine::gpc(std::max(1, (p + 7) / 8));
  if (p > m.total_cores()) GTEST_SKIP();
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Communicator use = comm;
  std::vector<Rank> oldrank = identity_permutation(p);
  if (reorder) {
    ReorderFramework fw(m);
    auto rc = fw.reorder(comm, mapping::Pattern::BinomialGather);
    use = rc.comm;
    oldrank = rc.oldrank;
  }
  Engine eng(use, simmpi::CostConfig{}, ExecMode::Data, 64, p);
  run_scatter(eng, algo, oldrank);
  check::audit_scatter(eng, oldrank);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScatterCorrectness,
    ::testing::Combine(::testing::Values(TreeAlgo::Linear,
                                         TreeAlgo::Binomial),
                       ::testing::Values(1, 2, 3, 5, 8, 16, 24, 32),
                       ::testing::Values(false, true)));

TEST(ScatterShape, BinomialBeatsLinearLatency) {
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, LayoutSpec{}));
  Engine lin(comm, simmpi::CostConfig{}, ExecMode::Timed, 64, 32);
  Engine bin(comm, simmpi::CostConfig{}, ExecMode::Timed, 64, 32);
  const auto id = identity_permutation(32);
  EXPECT_GT(run_scatter(lin, TreeAlgo::Linear, id),
            run_scatter(bin, TreeAlgo::Binomial, id));
}

TEST(StageObserver, CountsAlgorithmStages) {
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, LayoutSpec{}));

  struct Record {
    int stages = 0;
    int total_transfers = 0;
    Usec total_cost = 0.0;
  } rec;
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 32, 32);
  eng.set_stage_observer([&rec](int stage, int transfers, Usec cost) {
    EXPECT_EQ(stage, rec.stages);
    rec.stages++;
    rec.total_transfers += transfers;
    rec.total_cost += cost;
  });
  run_allgather(eng, AllgatherOptions{AllgatherAlgo::RecursiveDoubling,
                                      OrderFix::None});
  EXPECT_EQ(rec.stages, 5);  // log2(32)
  EXPECT_EQ(rec.total_transfers, 5 * 32);
  EXPECT_NEAR(rec.total_cost, eng.total(), 1e-9);
  EXPECT_EQ(eng.stages_executed(), 5);
}

TEST(StageObserver, RingStageCountInDataMode) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 32, 16);
  int stages = 0;
  eng.set_stage_observer([&](int, int, Usec) { ++stages; });
  run_allgather(eng, AllgatherOptions{AllgatherAlgo::Ring, OrderFix::None});
  EXPECT_EQ(stages, 15);  // p-1
}

TEST(StageObserver, GatherBinomialStageCount) {
  const Machine m = Machine::gpc(3);
  const Communicator comm(m, make_layout(m, 24, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 32, 24);
  run_gather(eng, TreeAlgo::Binomial, OrderFix::None,
             identity_permutation(24));
  EXPECT_EQ(eng.stages_executed(), ceil_log2(24));  // 5 halving stages
}

}  // namespace
}  // namespace tarr::collectives
