#include "graph/bisection.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "graph/pattern.hpp"

namespace tarr::graph {
namespace {

std::vector<int> iota_subset(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

int side_count(const BisectionResult& r, int side) {
  int c = 0;
  for (int s : r.side) c += s == side;
  return c;
}

TEST(Bisection, ExactPartSizes) {
  const WeightedGraph g = ring_pattern(10);
  Rng rng(1);
  for (int size0 : {0, 1, 3, 5, 9, 10}) {
    const auto r = bisect_subset(g, iota_subset(10), size0, rng);
    EXPECT_EQ(side_count(r, 0), size0);
    EXPECT_EQ(side_count(r, 1), 10 - size0);
  }
}

TEST(Bisection, RingCutIsSmall) {
  // A balanced bisection of a cycle has an optimal cut of 2 edges; the
  // heuristic should get close.
  const WeightedGraph g = ring_pattern(32);
  Rng rng(7);
  const auto r = bisect_subset(g, iota_subset(32), 16, rng);
  // Cut weight in units of the ring edge weight (31 per edge).
  EXPECT_LE(r.cut, 4 * 31.0);
}

TEST(Bisection, TwoCliquesSplitPerfectly) {
  // Two 4-cliques joined by one light edge: the optimal bisection cuts only
  // the bridge.
  WeightedGraph g(8);
  for (int base : {0, 4}) {
    for (int i = 0; i < 4; ++i)
      for (int j = i + 1; j < 4; ++j) g.add_edge(base + i, base + j, 10.0);
  }
  g.add_edge(0, 4, 1.0);
  g.finalize();
  Rng rng(3);
  const auto r = bisect_subset(g, iota_subset(8), 4, rng);
  EXPECT_DOUBLE_EQ(r.cut, 1.0);
  // The two cliques must land on opposite sides.
  for (int i = 1; i < 4; ++i) EXPECT_EQ(r.side[i], r.side[0]);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(r.side[i], r.side[4]);
  EXPECT_NE(r.side[0], r.side[4]);
}

TEST(Bisection, ReportedCutMatchesRecount) {
  const WeightedGraph g = recursive_doubling_pattern(16);
  Rng rng(5);
  const auto subset = iota_subset(16);
  const auto r = bisect_subset(g, subset, 8, rng);
  double cut = 0;
  for (const auto& e : g.edges())
    if (r.side[e.u] != r.side[e.v]) cut += e.w;
  EXPECT_DOUBLE_EQ(cut, r.cut);
}

TEST(Bisection, WorksOnSubsets) {
  const WeightedGraph g = ring_pattern(12);
  Rng rng(9);
  const std::vector<int> subset{2, 3, 4, 5, 8, 9};
  const auto r = bisect_subset(g, subset, 3, rng);
  EXPECT_EQ(r.side.size(), subset.size());
  EXPECT_EQ(side_count(r, 0), 3);
}

TEST(Bisection, DeterministicGivenSeed) {
  const WeightedGraph g = recursive_doubling_pattern(32);
  Rng a(42), b(42);
  const auto r1 = bisect_subset(g, iota_subset(32), 16, a);
  const auto r2 = bisect_subset(g, iota_subset(32), 16, b);
  EXPECT_EQ(r1.side, r2.side);
  EXPECT_EQ(r1.cut, r2.cut);
}

TEST(Bisection, DuplicateVertexRejected) {
  const WeightedGraph g = ring_pattern(4);
  Rng rng(1);
  EXPECT_THROW(bisect_subset(g, {0, 0, 1}, 1, rng), Error);
}

TEST(Bisection, BadSizeRejected) {
  const WeightedGraph g = ring_pattern(4);
  Rng rng(1);
  EXPECT_THROW(bisect_subset(g, iota_subset(4), 5, rng), Error);
  EXPECT_THROW(bisect_subset(g, iota_subset(4), -1, rng), Error);
}

class BisectionBalance : public ::testing::TestWithParam<int> {};

TEST_P(BisectionBalance, HalvesOfRdGraph) {
  const int p = GetParam();
  const WeightedGraph g = recursive_doubling_pattern(p);
  Rng rng(11);
  const auto r = bisect_subset(g, iota_subset(p), p / 2, rng);
  EXPECT_EQ(side_count(r, 0), p / 2);
  EXPECT_GT(r.cut, 0.0);  // the hypercube has no zero-cut bisection
}

INSTANTIATE_TEST_SUITE_P(Sizes, BisectionBalance,
                         ::testing::Values(4, 8, 16, 64, 256));

}  // namespace
}  // namespace tarr::graph
