#include "topology/network.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tarr::topology {
namespace {

TEST(SwitchGraph, AddVertexAndLink) {
  SwitchGraph g;
  const auto s = g.add_vertex(VertexKind::Switch, "sw");
  const auto h = g.add_vertex(VertexKind::Host, "n0", 0);
  const auto l = g.add_link(s, h, 2);
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.num_links(), 1);
  EXPECT_EQ(g.link(l).capacity, 2);
  EXPECT_EQ(g.other_end(l, s), h);
  EXPECT_EQ(g.other_end(l, h), s);
  EXPECT_EQ(g.host_vertex(0), h);
  EXPECT_EQ(g.num_hosts(), 1);
}

TEST(SwitchGraph, IncidentLists) {
  SwitchGraph g;
  const auto a = g.add_vertex(VertexKind::Switch, "a");
  const auto b = g.add_vertex(VertexKind::Switch, "b");
  const auto c = g.add_vertex(VertexKind::Switch, "c");
  g.add_link(a, b);
  g.add_link(a, c);
  EXPECT_EQ(g.incident(a).size(), 2u);
  EXPECT_EQ(g.incident(b).size(), 1u);
  EXPECT_EQ(g.incident(c).size(), 1u);
}

TEST(SwitchGraph, HostRequiresNodeIndex) {
  SwitchGraph g;
  EXPECT_THROW(g.add_vertex(VertexKind::Host, "bad"), Error);
}

TEST(SwitchGraph, DuplicateHostForNodeRejected) {
  SwitchGraph g;
  g.add_vertex(VertexKind::Host, "n0", 0);
  EXPECT_THROW(g.add_vertex(VertexKind::Host, "n0b", 0), Error);
}

TEST(SwitchGraph, SelfLoopRejected) {
  SwitchGraph g;
  const auto a = g.add_vertex(VertexKind::Switch, "a");
  EXPECT_THROW(g.add_link(a, a), Error);
}

TEST(SwitchGraph, BadCapacityRejected) {
  SwitchGraph g;
  const auto a = g.add_vertex(VertexKind::Switch, "a");
  const auto b = g.add_vertex(VertexKind::Switch, "b");
  EXPECT_THROW(g.add_link(a, b, 0), Error);
}

TEST(SwitchGraph, OtherEndRejectsNonEndpoint) {
  SwitchGraph g;
  const auto a = g.add_vertex(VertexKind::Switch, "a");
  const auto b = g.add_vertex(VertexKind::Switch, "b");
  const auto c = g.add_vertex(VertexKind::Switch, "c");
  const auto l = g.add_link(a, b);
  EXPECT_THROW(g.other_end(l, c), Error);
}

TEST(SwitchGraph, MissingHostThrows) {
  SwitchGraph g;
  g.add_vertex(VertexKind::Host, "n0", 0);
  EXPECT_THROW(g.host_vertex(1), Error);
  EXPECT_THROW(g.host_vertex(-1), Error);
}

TEST(SwitchGraph, DescribeCountsKinds) {
  SwitchGraph g;
  g.add_vertex(VertexKind::LeafSwitch, "leaf0");
  g.add_vertex(VertexKind::Host, "n0", 0);
  const std::string d = g.describe();
  EXPECT_NE(d.find("1 hosts"), std::string::npos);
  EXPECT_NE(d.find("1 leaf"), std::string::npos);
}

TEST(SwitchGraph, SwitchWithNodeIndexRejected) {
  // Only host vertices carry a compute-node index; a switch claiming one is
  // a wiring bug the graph rejects up front.
  SwitchGraph g;
  EXPECT_THROW(g.add_vertex(VertexKind::Switch, "sw", 0), Error);
  EXPECT_THROW(g.add_vertex(VertexKind::LeafSwitch, "leaf", 3), Error);
}

TEST(SwitchGraph, LinkEndpointBoundsChecked) {
  SwitchGraph g;
  const auto a = g.add_vertex(VertexKind::Switch, "a");
  EXPECT_THROW(g.add_link(a, 7), Error);
  EXPECT_THROW(g.add_link(-1, a), Error);
  EXPECT_THROW(g.add_link(a, 1, -2), Error);
}

TEST(VertexKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(VertexKind::Host), "host");
  EXPECT_STREQ(to_string(VertexKind::LeafSwitch), "leaf");
  EXPECT_STREQ(to_string(VertexKind::LineSwitch), "line");
  EXPECT_STREQ(to_string(VertexKind::SpineSwitch), "spine");
  EXPECT_STREQ(to_string(VertexKind::Switch), "switch");
}

}  // namespace
}  // namespace tarr::topology
