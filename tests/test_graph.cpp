#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tarr::graph {
namespace {

TEST(WeightedGraph, MergesParallelEdges) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 2.5);
  g.add_edge(1, 2, 1.0);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 2);
  double w01 = 0;
  for (const auto& nb : g.neighbors(0))
    if (nb.vertex == 1) w01 = nb.weight;
  EXPECT_DOUBLE_EQ(w01, 3.5);
}

TEST(WeightedGraph, WeightedDegree) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(0, 3, 3.0);
  g.finalize();
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 6.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(3), 3.0);
}

TEST(WeightedGraph, CutWeight) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(0, 2, 5.0);
  g.finalize();
  EXPECT_DOUBLE_EQ(g.cut_weight({0, 0, 1, 1}), 5.0);
  EXPECT_DOUBLE_EQ(g.cut_weight({0, 1, 0, 1}), 2.0);
  EXPECT_DOUBLE_EQ(g.cut_weight({0, 0, 0, 0}), 0.0);
}

TEST(WeightedGraph, RejectsBadEdges) {
  WeightedGraph g(2);
  EXPECT_THROW(g.add_edge(0, 0), Error);
  EXPECT_THROW(g.add_edge(0, 2), Error);
  EXPECT_THROW(g.add_edge(-1, 0), Error);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), Error);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), Error);
}

TEST(WeightedGraph, AccessBeforeFinalizeThrows) {
  WeightedGraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.neighbors(0), Error);
  EXPECT_THROW(g.edges(), Error);
  EXPECT_THROW(g.weighted_degree(0), Error);
}

TEST(WeightedGraph, AddAfterFinalizeThrows) {
  WeightedGraph g(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_THROW(g.add_edge(1, 2), Error);
}

TEST(WeightedGraph, FinalizeIdempotent) {
  WeightedGraph g(2);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_NO_THROW(g.finalize());
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(WeightedGraph, NeighborsAreBidirectional) {
  WeightedGraph g(3);
  g.add_edge(0, 2, 4.0);
  g.finalize();
  ASSERT_EQ(g.neighbors(2).size(), 1u);
  EXPECT_EQ(g.neighbors(2)[0].vertex, 0);
  EXPECT_DOUBLE_EQ(g.neighbors(2)[0].weight, 4.0);
}

}  // namespace
}  // namespace tarr::graph
