#include "collectives/allgatherv.hpp"

#include "collectives/allgather.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/framework.hpp"
#include "simmpi/layout.hpp"

namespace tarr::collectives {
namespace {

using core::ReorderFramework;
using simmpi::Communicator;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

std::vector<int> random_counts(int p, Rng& rng, int max_count = 9) {
  std::vector<int> counts(p);
  for (int& c : counts) c = 1 + static_cast<int>(rng.next_below(max_count));
  return counts;
}

class AllgathervFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AllgathervFuzz, VariableSizesInOriginalOrder) {
  Rng rng(500 + GetParam());
  const int p = 2 + static_cast<int>(rng.next_below(40));
  const Machine m = Machine::gpc((p + 7) / 8);
  const Communicator comm(
      m, make_layout(m, p,
                     simmpi::all_layouts()[GetParam() % 4]));
  const auto counts = random_counts(p, rng);
  const int total = std::accumulate(counts.begin(), counts.end(), 0);

  // Identity and reordered.
  for (bool reorder : {false, true}) {
    Communicator use = comm;
    std::vector<Rank> oldrank(p);
    std::iota(oldrank.begin(), oldrank.end(), 0);
    if (reorder) {
      ReorderFramework fw(m);
      auto rc = fw.reorder(comm, mapping::Pattern::Ring);
      use = rc.comm;
      oldrank = rc.oldrank;
    }
    Engine eng(use, simmpi::CostConfig{}, ExecMode::Data, 1, total);
    run_allgatherv_ring(eng, counts, oldrank);
    check_allgatherv_output(eng, counts);
    EXPECT_EQ(eng.stages_executed(), p - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllgathervFuzz, ::testing::Range(0, 12));

TEST(Allgatherv, UniformCountsMatchFixedRingTime) {
  // With equal counts the v-variant must price exactly like the fixed ring.
  const Machine m = Machine::gpc(4);
  const int p = 32;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  const Bytes msg = 4096;

  Engine v(comm, simmpi::CostConfig{}, ExecMode::Timed, 1,
           p * static_cast<int>(msg));
  run_allgatherv_ring(v, std::vector<int>(p, static_cast<int>(msg)));

  Engine fixed(comm, simmpi::CostConfig{}, ExecMode::Data, msg, p);
  run_allgather(fixed, AllgatherOptions{AllgatherAlgo::Ring,
                                        OrderFix::None});
  EXPECT_NEAR(v.total(), fixed.total(), 1e-9 * fixed.total());
}

TEST(Allgatherv, SkewedSizesCostMoreThanBalanced) {
  // One giant contributor dominates every stage it passes through.
  const Machine m = Machine::gpc(2);
  const int p = 16;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  std::vector<int> balanced(p, 1024);
  std::vector<int> skewed(p, 2);
  skewed[5] = 1024 * p - 2 * (p - 1);  // same total volume

  Engine b(comm, simmpi::CostConfig{}, ExecMode::Timed, 1, 1024 * p);
  run_allgatherv_ring(b, balanced);
  Engine s(comm, simmpi::CostConfig{}, ExecMode::Timed, 1, 1024 * p);
  run_allgatherv_ring(s, skewed);
  EXPECT_GT(s.total(), b.total());
}

TEST(Allgatherv, InputValidation) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 4, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 1, 64);
  EXPECT_THROW(run_allgatherv_ring(eng, {1, 2, 3}), Error);       // size
  EXPECT_THROW(run_allgatherv_ring(eng, {1, 0, 1, 1}), Error);    // zero
  Engine wrong_block(comm, simmpi::CostConfig{}, ExecMode::Data, 8, 64);
  EXPECT_THROW(run_allgatherv_ring(wrong_block, {1, 1, 1, 1}), Error);
  Engine small(comm, simmpi::CostConfig{}, ExecMode::Data, 1, 3);
  EXPECT_THROW(run_allgatherv_ring(small, {1, 1, 1, 1}), Error);
}

}  // namespace
}  // namespace tarr::collectives
