// tarr::report: the exact-accounting invariant of the schedule recorder and
// critical-path analyzer (attributed time sums bit-exactly to the engine
// total — EXPECT_EQ, not NEAR), channel classification, mapping-attribution
// diffs, bench snapshot round-trips, and the regression gate's verdicts.

#include "report/critical_path.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "bench/fixtures.hpp"
#include "collectives/allgather.hpp"
#include "collectives/hierarchical.hpp"
#include "common/permutation.hpp"
#include "core/framework.hpp"
#include "fault/shrink.hpp"
#include "report/diff.hpp"
#include "report/record.hpp"
#include "report/render.hpp"
#include "report/snapshot.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"
#include "simmpi/transient.hpp"
#include "trace/tracer.hpp"

namespace tarr::report {
namespace {

using simmpi::Communicator;
using simmpi::CostConfig;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::make_layout;
using topology::Machine;

/// Per-segment sanity: the nature breakdown covers the whole duration and
/// nothing is negative.
void expect_breakdown_covers(const CriticalPath& path) {
  for (const auto& s : path.segments) {
    EXPECT_GE(s.serialization, 0.0) << s.what;
    EXPECT_GE(s.contention, 0.0) << s.what;
    EXPECT_GE(s.retransmission, 0.0) << s.what;
    const double sum = s.serialization + s.contention + s.retransmission;
    EXPECT_NEAR(sum, s.duration, 1e-9 * std::max(1.0, s.duration)) << s.what;
  }
  double by_channel = 0.0;
  for (const auto& [ch, attr] : path.by_channel) by_channel += attr.time;
  EXPECT_NEAR(by_channel, path.total, 1e-9 * std::max(1.0, path.total));
}

/// Run a ring or recursive-doubling allgather over `comm` with a recorder
/// attached and return (record, engine total).
std::pair<ScheduleRecord, Usec> record_allgather(
    const Communicator& comm, collectives::AllgatherAlgo algo,
    collectives::OrderFix fix = collectives::OrderFix::None,
    Bytes block = 256) {
  ScheduleRecorder rec;
  Engine eng(comm, CostConfig{}, ExecMode::Timed, block, comm.size());
  eng.set_trace_sink(&rec);
  collectives::run_allgather(eng, {algo, fix},
                             identity_permutation(comm.size()));
  return {rec.take(), eng.total()};
}

// ---------------------------------------------------------------------------
// The exact-sum invariant, across every schedule shape the engine emits.

TEST(CriticalPath, AttributionSumsExactlyRingAllgather) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  // The ring uses repeat_last_stage compression in Timed mode, so this also
  // covers the repeats > 1 path.
  const auto [rec, total] =
      record_allgather(comm, collectives::AllgatherAlgo::Ring);
  const CriticalPath path = analyze_critical_path(rec, m);
  EXPECT_EQ(path.total, total);  // bit-exact, not approximate
  EXPECT_EQ(rec.total, total);
  EXPECT_FALSE(path.segments.empty());
  expect_breakdown_covers(path);
}

TEST(CriticalPath, AttributionSumsExactlyRecursiveDoubling) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  const auto [rec, total] =
      record_allgather(comm, collectives::AllgatherAlgo::RecursiveDoubling);
  const CriticalPath path = analyze_critical_path(rec, m);
  EXPECT_EQ(path.total, total);
  expect_breakdown_covers(path);
}

TEST(CriticalPath, AttributionSumsExactlyWithEndShuffle) {
  // §V-B end shuffle adds out-of-stage time via a TimeEvent; the analyzer
  // must fold it into the chain (as a Local segment) to stay exact.  The
  // oldrank permutation must actually move blocks (identity would shuffle
  // nothing and skip the charge), so rotate by one.
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  std::vector<Rank> rotated(16);
  for (int i = 0; i < 16; ++i) rotated[i] = (i + 1) % 16;
  ScheduleRecorder recorder;
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, 16);
  eng.set_trace_sink(&recorder);
  collectives::run_allgather(eng,
                             {collectives::AllgatherAlgo::RecursiveDoubling,
                              collectives::OrderFix::EndShuffle},
                             rotated);
  const ScheduleRecord rec = recorder.take();
  const Usec total = eng.total();
  const CriticalPath path = analyze_critical_path(rec, m);
  EXPECT_EQ(path.total, total);
  bool saw_shuffle = false;
  for (const auto& s : path.segments)
    if (s.what == "local-shuffle") {
      saw_shuffle = true;
      EXPECT_EQ(s.channel, PathChannel::Local);
      EXPECT_EQ(s.stage, -1);
    }
  EXPECT_TRUE(saw_shuffle);
  expect_breakdown_covers(path);
}

TEST(CriticalPath, AttributionSumsExactlyHierarchical) {
  const Machine m = Machine::gpc(4);
  const int p = m.total_cores();
  const Communicator comm(m, make_layout(m, p, {}));
  ScheduleRecorder rec;
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, p);
  eng.set_trace_sink(&rec);
  collectives::run_hier_allgather(
      eng,
      {collectives::AllgatherAlgo::Ring, collectives::IntraAlgo::Binomial,
       collectives::OrderFix::None},
      identity_permutation(p));
  const ScheduleRecord record = rec.take();
  const CriticalPath path = analyze_critical_path(record, m);
  EXPECT_EQ(path.total, eng.total());
  expect_breakdown_covers(path);
  // Hierarchical phases annotate the chain.
  EXPECT_FALSE(record.phases.empty());
  bool saw_phase = false;
  for (const auto& s : path.segments) saw_phase |= !s.phase.empty();
  EXPECT_TRUE(saw_phase);
}

TEST(CriticalPath, AttributionSumsExactlyPipelinedHierarchical) {
  const Machine m = Machine::gpc(4);
  const int p = m.total_cores();  // 8 cores/node = 2^3, as the pipeline needs
  const Communicator comm(m, make_layout(m, p, {}));
  ScheduleRecorder rec;
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, p);
  eng.set_trace_sink(&rec);
  collectives::run_hier_allgather_pipelined(eng, collectives::IntraAlgo::Binomial,
                                            collectives::OrderFix::None,
                                            identity_permutation(p));
  const CriticalPath path = analyze_critical_path(rec.record(), m);
  EXPECT_EQ(path.total, eng.total());
  expect_breakdown_covers(path);
}

TEST(CriticalPath, AttributionSumsExactlyOnShrunkenCommunicator) {
  // Post-fault: node 3 dies, the communicator shrinks, the schedule routes
  // over the degraded machine — the analyzer must follow the same routes.
  const Machine base = Machine::gpc(8);
  const Communicator parent(base,
                            make_layout(base, base.total_cores(), {}));
  const fault::DegradedTopology topo(base, fault::FaultMask{}.fail_node(3));
  const fault::ShrunkComm shrunk = fault::shrink_communicator(topo, parent);
  ScheduleRecorder rec;
  Engine eng(shrunk.comm, CostConfig{}, ExecMode::Timed, 256,
             shrunk.comm.size());
  eng.set_trace_sink(&rec);
  collectives::run_allgather(
      eng, {collectives::AllgatherAlgo::Ring, collectives::OrderFix::None},
      identity_permutation(shrunk.comm.size()));
  const CriticalPath path = analyze_critical_path(rec.record(), topo.machine());
  EXPECT_EQ(path.total, eng.total());
  expect_breakdown_covers(path);
}

TEST(CriticalPath, AttributionSumsExactlyUnderTransientFaults) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  simmpi::TransientFaultConfig faults;
  faults.drop_prob = 0.2;
  faults.seed = 5;
  ScheduleRecorder rec;
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, 16);
  eng.set_transient_faults(faults);
  eng.set_trace_sink(&rec);
  collectives::run_allgather(
      eng,
      {collectives::AllgatherAlgo::RecursiveDoubling,
       collectives::OrderFix::None},
      identity_permutation(16));
  ASSERT_GT(eng.transient_stats().retransmissions, 0);
  const CriticalPath path = analyze_critical_path(rec.record(), m);
  EXPECT_EQ(path.total, eng.total());
  // Drop-detection timeouts surface as retransmission overhead on the path.
  EXPECT_GT(path.retransmission, 0.0);
  expect_breakdown_covers(path);
}

TEST(CriticalPath, AddTimeBecomesAnExtraSegment) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 4, {}));
  ScheduleRecorder rec;
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 64, 4);
  eng.set_trace_sink(&rec);
  eng.begin_stage();
  eng.copy(0, 0, 1, 0, 1);
  eng.end_stage();
  eng.add_time(17.5, "compute");
  const CriticalPath path = analyze_critical_path(rec.record(), m);
  EXPECT_EQ(path.total, eng.total());
  ASSERT_EQ(path.segments.size(), 2u);
  EXPECT_EQ(path.segments[1].what, "compute");
  EXPECT_EQ(path.segments[1].channel, PathChannel::Other);
  EXPECT_EQ(path.segments[1].duration, 17.5);
  // Out-of-stage time is pure serialization.
  EXPECT_EQ(path.segments[1].serialization, 17.5);
}

// ---------------------------------------------------------------------------
// Repeat compression: shared transfer slices and replayed resource loads.

TEST(Record, RepeatCompressionMatchesExplicitStages) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  auto run = [&](bool compressed, ScheduleRecorder& rec) {
    Engine eng(comm, CostConfig{}, ExecMode::Timed, 64, 16);
    eng.set_trace_sink(&rec);
    const int reps = 3;
    if (compressed) {
      eng.begin_stage();
      eng.copy(0, 0, 15, 0, 1);  // crosses the network
      eng.end_stage();
      eng.repeat_last_stage(reps - 1);
    } else {
      for (int i = 0; i < reps; ++i) {
        eng.begin_stage();
        eng.copy(0, 0, 15, 0, 1);
        eng.end_stage();
      }
    }
    return eng.total();
  };
  ScheduleRecorder compressed, explicit_;
  const Usec tc = run(true, compressed);
  const Usec te = run(false, explicit_);
  EXPECT_EQ(tc, te);
  EXPECT_EQ(compressed.record().total, tc);
  EXPECT_EQ(explicit_.record().total, te);
  // The compressed record replays the repeated stage's link loads, so both
  // runs attribute identical bytes to every directed cable.
  EXPECT_EQ(compressed.record().link_bytes, explicit_.record().link_bytes);
  EXPECT_EQ(compressed.record().qpi_bytes, explicit_.record().qpi_bytes);
  // And the critical paths agree on total and channel attribution.
  const CriticalPath pc = analyze_critical_path(compressed.record(), m);
  const CriticalPath pe = analyze_critical_path(explicit_.record(), m);
  EXPECT_EQ(pc.total, pe.total);
  ASSERT_FALSE(pc.segments.empty());
  EXPECT_EQ(pc.segments.back().repeats, 2);  // the compressed block
}

TEST(Record, PhaseAtReturnsInnermostPhase) {
  ScheduleRecord rec;
  rec.phases.push_back({"outer", 0.0, 100.0});
  rec.phases.push_back({"inner", 10.0, 20.0});
  EXPECT_EQ(rec.phase_at(15.0), "inner");
  EXPECT_EQ(rec.phase_at(50.0), "outer");
  EXPECT_EQ(rec.phase_at(200.0), "");
}

// ---------------------------------------------------------------------------
// Channel classification.

TEST(CriticalPath, ClassifiesChannelsByMachineTopology) {
  const Machine m = Machine::gpc(64);  // > one leaf switch worth of nodes
  RecordedTransfer t;
  t.src_core = 0;
  t.dst_core = 1;

  t.channel = trace::Channel::SameSocket;
  EXPECT_EQ(classify_channel(m, t), PathChannel::IntraSocket);
  t.channel = trace::Channel::SameComplex;
  EXPECT_EQ(classify_channel(m, t), PathChannel::IntraSocket);
  t.channel = trace::Channel::CrossSocket;
  EXPECT_EQ(classify_channel(m, t), PathChannel::Qpi);
  t.channel = trace::Channel::Local;
  EXPECT_EQ(classify_channel(m, t), PathChannel::Local);

  // Find an intra-leaf pair (2 hops) and a cross-core-switch pair (> 2).
  CoreId intra_leaf = -1, cross_core = -1;
  for (NodeId n = 1; n < 64; ++n) {
    const CoreId c = n * m.cores_per_node();
    const int hops = m.network_hops_between_cores(0, c);
    if (hops <= 2 && intra_leaf < 0) intra_leaf = c;
    if (hops > 2 && cross_core < 0) cross_core = c;
  }
  ASSERT_GE(intra_leaf, 0);
  ASSERT_GE(cross_core, 0);
  t.channel = trace::Channel::Network;
  t.dst_core = intra_leaf;
  EXPECT_EQ(classify_channel(m, t), PathChannel::IntraLeaf);
  t.dst_core = cross_core;
  EXPECT_EQ(classify_channel(m, t), PathChannel::CrossCore);
}

// ---------------------------------------------------------------------------
// Mapping-attribution diff.

TEST(Diff, DetectsMigrationBetweenChannelClasses) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  auto run = [&](Rank dst, ScheduleRecorder& rec) {
    Engine eng(comm, CostConfig{}, ExecMode::Timed, 1024, 16);
    eng.set_trace_sink(&rec);
    eng.begin_stage();
    eng.copy(0, 0, dst, 0, 1);
    eng.end_stage();
    return eng.total();
  };
  // Run A sends across the network; run B keeps the byte on-node.
  ScheduleRecorder ra, rb;
  const Usec ta = run(15, ra);
  const Usec tb = run(1, rb);
  ASSERT_GT(ta, tb);  // network is slower than shared memory
  const MappingDiff diff = diff_runs(ra.record(), rb.record(), m);
  EXPECT_EQ(diff.total_a, ta);
  EXPECT_EQ(diff.total_b, tb);
  EXPECT_GT(diff.improvement_percent, 0.0);
  // Bytes left the network classes...
  double network_delta = 0.0;
  for (const auto ch : {PathChannel::IntraLeaf, PathChannel::CrossCore}) {
    const auto it = diff.channels.find(ch);
    if (it != diff.channels.end()) network_delta += it->second.bytes_delta();
  }
  EXPECT_LT(network_delta, 0.0);
  // ...and the directed cables run A loaded show up as relieved.
  ASSERT_FALSE(diff.relieved.empty());
  for (const auto& r : diff.relieved) EXPECT_LT(r.delta(), 0.0);
  // Run B loaded no cable, so nothing is newly loaded.
  for (const auto& r : diff.newly_loaded) EXPECT_FALSE(r.qpi);
}

TEST(Diff, ReorderingConservesLogicalBytes) {
  // Same collective, two mappings: the diff must show identical total
  // logical bytes (migrated between classes, not created or lost).
  const Machine m = Machine::gpc(4);
  const simmpi::LayoutSpec cyclic{simmpi::NodeOrder::Cyclic,
                                  simmpi::SocketOrder::Bunch};
  const Communicator comm(m, make_layout(m, 32, cyclic));
  core::ReorderFramework fw(m);
  const auto rc = fw.reorder(comm, mapping::Pattern::Ring);

  ScheduleRecorder base, cand;
  auto run = [&](const Communicator& c, ScheduleRecorder& rec) {
    Engine eng(c, CostConfig{}, ExecMode::Timed, 4096, c.size());
    eng.set_trace_sink(&rec);
    return collectives::run_allgather(
        eng, {collectives::AllgatherAlgo::Ring, collectives::OrderFix::None},
        identity_permutation(c.size()));
  };
  run(comm, base);
  run(rc.comm, cand);
  const MappingDiff diff = diff_runs(base.record(), cand.record(), m);
  double bytes_a = 0.0, bytes_b = 0.0;
  for (const auto& [ch, d] : diff.channels) {
    bytes_a += d.a.bytes;
    bytes_b += d.b.bytes;
  }
  EXPECT_EQ(bytes_a, bytes_b);
  // The topology-aware mapping must not lose to the cyclic baseline.
  EXPECT_LE(diff.total_b, diff.total_a);
}

// ---------------------------------------------------------------------------
// Snapshots and the regression gate.

BenchSnapshot sample_snapshot() {
  BenchSnapshot s;
  s.bench = "fig3_nonhier";
  s.config = "smoke";
  s.meta["nodes"] = "16";
  s.metrics.push_back({"latency_us", 120.5, "us", false, true});
  s.metrics.push_back({"improvement", 31.25, "percent", true, true});
  s.metrics.push_back({"wall_seconds", 1.75, "seconds", false, false});
  return s;
}

TEST(Snapshot, JsonRoundTripPreservesEverything) {
  const BenchSnapshot s = sample_snapshot();
  const BenchSnapshot r = parse_snapshot(s.json());
  EXPECT_EQ(r.schema, kSnapshotSchema);
  EXPECT_EQ(r.bench, s.bench);
  EXPECT_EQ(r.config, s.config);
  EXPECT_EQ(r.meta, s.meta);
  ASSERT_EQ(r.metrics.size(), s.metrics.size());
  for (std::size_t i = 0; i < s.metrics.size(); ++i) {
    EXPECT_EQ(r.metrics[i].name, s.metrics[i].name);
    EXPECT_EQ(r.metrics[i].value, s.metrics[i].value);  // %.17g round-trips
    EXPECT_EQ(r.metrics[i].unit, s.metrics[i].unit);
    EXPECT_EQ(r.metrics[i].higher_is_better, s.metrics[i].higher_is_better);
    EXPECT_EQ(r.metrics[i].gate, s.metrics[i].gate);
  }
  // Serialization is deterministic.
  EXPECT_EQ(s.json(), r.json());
}

TEST(Snapshot, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_snapshot("not json"), Error);
  EXPECT_THROW(parse_snapshot("{\"schema\": 1}"), Error);  // missing fields
  EXPECT_THROW(parse_snapshot("{\"schema\": 99, \"bench\": \"x\", "
                              "\"config\": \"y\", \"metrics\": []}"),
               Error);  // unsupported schema
  EXPECT_THROW(parse_snapshot(sample_snapshot().json() + "garbage"), Error);
}

TEST(Snapshot, IdenticalSnapshotsPassTheGate) {
  const BenchSnapshot s = sample_snapshot();
  const auto cmp = compare_snapshots(s, s, CompareOptions{});
  EXPECT_FALSE(cmp.regressed());
  for (const auto& m : cmp.metrics) {
    EXPECT_FALSE(m.regressed) << m.name;
    EXPECT_FALSE(m.improved) << m.name;
  }
}

TEST(Snapshot, InjectedRegressionBeyondToleranceFails) {
  const BenchSnapshot base = sample_snapshot();
  BenchSnapshot cur = base;
  cur.metrics[0].value = 130.0;  // latency +7.9% with 2% tolerance -> worse
  CompareOptions opts;
  opts.rel_tolerance = 2.0;
  const auto cmp = compare_snapshots(base, cur, opts);
  EXPECT_TRUE(cmp.regressed());
  EXPECT_TRUE(cmp.metrics[0].regressed);
  // Within tolerance: no verdict either way.
  cur.metrics[0].value = 121.0;  // +0.4%
  EXPECT_FALSE(compare_snapshots(base, cur, opts).regressed());
}

TEST(Snapshot, DirectionAndGateFlagsAreHonored) {
  const BenchSnapshot base = sample_snapshot();
  CompareOptions opts;
  opts.rel_tolerance = 2.0;

  // A higher_is_better metric dropping is a regression...
  BenchSnapshot cur = base;
  cur.metrics[1].value = 20.0;  // improvement 31.25 -> 20
  EXPECT_TRUE(compare_snapshots(base, cur, opts).metrics[1].regressed);
  // ...and rising is an improvement, never a regression.
  cur.metrics[1].value = 40.0;
  {
    const auto cmp = compare_snapshots(base, cur, opts);
    EXPECT_FALSE(cmp.metrics[1].regressed);
    EXPECT_TRUE(cmp.metrics[1].improved);
  }
  // gate=false metrics (wall time) never regress, however bad.
  cur = base;
  cur.metrics[2].value = 1000.0;
  EXPECT_FALSE(compare_snapshots(base, cur, opts).regressed());
}

TEST(Snapshot, MissingMetricOrBenchRegresses) {
  const BenchSnapshot base = sample_snapshot();
  BenchSnapshot cur = base;
  cur.metrics.erase(cur.metrics.begin());  // drop the gated latency metric
  const auto cmp = compare_snapshots(base, cur, CompareOptions{});
  EXPECT_TRUE(cmp.regressed());
  EXPECT_TRUE(cmp.metrics[0].missing);

  // A whole bench vanishing from the current set is a regression too.
  const auto results =
      compare_snapshot_sets({base}, {}, CompareOptions{});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].missing);
  EXPECT_TRUE(any_regressed(results));
}

TEST(Snapshot, SetLoadsFromDirectoryAndGates) {
  const std::string dir = ::testing::TempDir() + "tarr_snapshot_set";
  std::filesystem::create_directories(dir);
  BenchSnapshot a = sample_snapshot();
  BenchSnapshot b = sample_snapshot();
  b.bench = "fig4_hier";
  a.write(dir + "/BENCH_" + a.bench + ".json");
  b.write(dir + "/BENCH_" + b.bench + ".json");

  const auto set = load_snapshot_set(dir);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0].bench, "fig3_nonhier");  // sorted by bench name
  EXPECT_EQ(set[1].bench, "fig4_hier");

  const auto results = compare_snapshot_sets(set, set, CompareOptions{});
  EXPECT_FALSE(any_regressed(results));
  const std::string rendered =
      render_comparison(results, CompareOptions{}, RenderFormat::Text);
  EXPECT_NE(rendered.find("PASS"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Snapshot, GlobMatchHandlesStarsAndQuestionMarks) {
  EXPECT_TRUE(glob_match("BENCH_*.json", "BENCH_fig3_nonhier.json"));
  EXPECT_TRUE(glob_match("BENCH_fig?_*.json", "BENCH_fig3_nonhier.json"));
  EXPECT_FALSE(glob_match("BENCH_fig?_*.json", "BENCH_abl_contention.json"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("***", "x"));
  EXPECT_FALSE(glob_match("?", ""));
  EXPECT_TRUE(glob_match("a*b*c", "axxbxxc"));
  EXPECT_FALSE(glob_match("a*b*c", "axxbxx"));
  // Backtracking: the first `*` must be able to re-absorb a premature match.
  EXPECT_TRUE(glob_match("*bc", "abcbc"));
  EXPECT_TRUE(glob_match("exact.json", "exact.json"));
  EXPECT_FALSE(glob_match("exact.json", "exact.jsonx"));
}

TEST(Snapshot, GlobPathsAndSetLoading) {
  const std::string dir = ::testing::TempDir() + "tarr_snapshot_glob";
  std::filesystem::create_directories(dir);
  BenchSnapshot a = sample_snapshot();  // bench fig3_nonhier
  BenchSnapshot b = sample_snapshot();
  b.bench = "fig4_hier";
  BenchSnapshot c = sample_snapshot();
  c.bench = "abl_contention";
  a.write(dir + "/BENCH_" + a.bench + ".json");
  b.write(dir + "/BENCH_" + b.bench + ".json");
  c.write(dir + "/BENCH_" + c.bench + ".json");

  // The fig? glob selects the two figure snapshots, not the ablation.
  const auto figs = load_snapshot_set_glob(dir + "/BENCH_fig?_*.json");
  ASSERT_EQ(figs.size(), 2u);
  EXPECT_EQ(figs[0].bench, "fig3_nonhier");  // sorted by bench name
  EXPECT_EQ(figs[1].bench, "fig4_hier");

  // Without wildcards the glob loader is exactly load_snapshot_set.
  const auto all = load_snapshot_set_glob(dir);
  EXPECT_EQ(all.size(), 3u);

  // glob_paths returns sorted paths; nothing matching is an error.
  const auto paths = glob_paths(dir + "/BENCH_*.json");
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_TRUE(std::is_sorted(paths.begin(), paths.end()));
  EXPECT_THROW(glob_paths(dir + "/BENCH_nomatch*"), Error);
  EXPECT_THROW(glob_paths(dir + "/missing.json"), Error);
  // Wildcards in a directory component are rejected, not mis-expanded.
  EXPECT_THROW(glob_paths(dir + "/*/BENCH_*.json"), Error);
  std::filesystem::remove_all(dir);
}

TEST(Snapshot, EmitterWritesGatedFileWhenEnvSet) {
  const std::string dir = ::testing::TempDir() + "tarr_snapshot_emit";
  std::filesystem::create_directories(dir);
  ::setenv("TARR_BENCH_SNAPSHOT_DIR", dir.c_str(), 1);
  ::setenv("TARR_BENCH_SMOKE", "1", 1);
  {
    bench::SnapshotEmitter emitter("unit_test");
    ASSERT_TRUE(emitter.enabled());
    emitter.set_meta("nodes", "2");
    emitter.add_metric("cost", 42.0, "us", /*higher_is_better=*/false);
    EXPECT_TRUE(emitter.dump());
  }
  ::unsetenv("TARR_BENCH_SNAPSHOT_DIR");
  ::unsetenv("TARR_BENCH_SMOKE");
  const BenchSnapshot s = load_snapshot(dir + "/BENCH_unit_test.json");
  EXPECT_EQ(s.bench, "unit_test");
  EXPECT_EQ(s.config, "smoke");
  EXPECT_EQ(s.meta.at("nodes"), "2");
  ASSERT_EQ(s.metrics.size(), 2u);  // cost + auto-appended wall_seconds
  EXPECT_EQ(s.metrics[0].name, "cost");
  EXPECT_EQ(s.metrics[1].name, "wall_seconds");
  EXPECT_FALSE(s.metrics[1].gate);
  std::filesystem::remove_all(dir);

  // Disabled (no env var): inert, no file.
  bench::SnapshotEmitter off("unit_test_off");
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.dump());
}

// ---------------------------------------------------------------------------
// Plumbing: TeeSink fan-out and fail-fast path probing.

TEST(Plumbing, TeeSinkFeedsTracerAndRecorderIdentically) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  trace::Tracer tracer;
  ScheduleRecorder rec;
  trace::TeeSink tee(&tracer, &rec);
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, 16);
  eng.set_trace_sink(&tee);
  collectives::run_allgather(
      eng, {collectives::AllgatherAlgo::Ring, collectives::OrderFix::None},
      identity_permutation(16));
  // Both sides saw the full run: the recorder reconstructs the exact total
  // and the tracer aggregated every stage.
  EXPECT_EQ(rec.record().total, eng.total());
  EXPECT_GT(tracer.metrics().count("engine.stages"), 0.0);
  EXPECT_FALSE(tracer.spans().empty());
  // And teeing must not perturb the simulation itself.
  Engine plain(comm, CostConfig{}, ExecMode::Timed, 256, 16);
  collectives::run_allgather(
      plain, {collectives::AllgatherAlgo::Ring, collectives::OrderFix::None},
      identity_permutation(16));
  EXPECT_EQ(plain.total(), eng.total());

  // Null branches are simply skipped.
  trace::TeeSink half(nullptr, &rec);
  half.on_time(trace::TimeEvent{"x", 0.0, 1.0});
  trace::TeeSink none(nullptr, nullptr);
  none.on_time(trace::TimeEvent{"x", 0.0, 1.0});
}

TEST(Plumbing, EnsureWritableFailsFastAndLeavesNoArtifact) {
  EXPECT_THROW(
      trace::Tracer::ensure_writable("/nonexistent-dir-tarr/trace.json"),
      Error);
  // A probe on a fresh path must not leave an empty file behind.
  const std::string fresh = ::testing::TempDir() + "tarr_probe_fresh.json";
  std::remove(fresh.c_str());
  trace::Tracer::ensure_writable(fresh);
  EXPECT_FALSE(std::filesystem::exists(fresh));
  // A probe on an existing file must not truncate it.
  const std::string existing = ::testing::TempDir() + "tarr_probe_keep.json";
  {
    std::FILE* f = std::fopen(existing.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("payload", f);
    std::fclose(f);
  }
  trace::Tracer::ensure_writable(existing);
  EXPECT_EQ(std::filesystem::file_size(existing), 7u);
  std::remove(existing.c_str());
}

// ---------------------------------------------------------------------------
// Rendering smoke checks (content is covered by the modules above).

TEST(Render, ReportsMentionTheirKeyNumbers) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  const auto [rec, total] =
      record_allgather(comm, collectives::AllgatherAlgo::Ring);
  const CriticalPath path = analyze_critical_path(rec, m);
  for (const auto fmt : {RenderFormat::Text, RenderFormat::Markdown}) {
    const std::string out = render_critical_path(path, fmt);
    EXPECT_NE(out.find("critical path"), std::string::npos);
    EXPECT_NE(out.find("serialization"), std::string::npos);
  }
  const MappingDiff diff = diff_runs(rec, rec, m);
  EXPECT_EQ(diff.improvement_percent, 0.0);
  const std::string out = render_diff(diff);
  EXPECT_NE(out.find("mapping-attribution diff"), std::string::npos);
}

}  // namespace
}  // namespace tarr::report
