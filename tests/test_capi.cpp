// Tests of the C API facade, including its error-reporting contract.

#include "capi/tarr.h"

#include <gtest/gtest.h>

#include <string>

namespace {

struct Handles {
  tarr_machine_t machine = nullptr;
  tarr_comm_t comm = nullptr;
  tarr_framework_t framework = nullptr;
  tarr_allgather_t allgather = nullptr;

  ~Handles() {
    tarr_allgather_destroy(allgather);
    tarr_framework_destroy(framework);
    tarr_comm_destroy(comm);
    tarr_machine_destroy(machine);
  }
};

TEST(CApi, FullLifecycle) {
  Handles h;
  ASSERT_EQ(tarr_machine_create_gpc(8, &h.machine), TARR_OK);
  EXPECT_EQ(tarr_machine_total_cores(h.machine), 64);
  EXPECT_EQ(tarr_machine_num_nodes(h.machine), 8);

  ASSERT_EQ(tarr_comm_create(h.machine, 64, "cyclic-bunch", &h.comm),
            TARR_OK);
  EXPECT_EQ(tarr_comm_size(h.comm), 64);
  EXPECT_GE(tarr_comm_core_of(h.comm, 0), 0);

  ASSERT_EQ(tarr_framework_create(h.machine, 1, &h.framework), TARR_OK);
  ASSERT_EQ(tarr_allgather_create(h.framework, h.comm,
                                  "tarr_mapper=heuristic;"
                                  "tarr_order_fix=initcomm",
                                  &h.allgather),
            TARR_OK);

  double latency = 0.0;
  ASSERT_EQ(tarr_allgather_latency(h.allgather, 64 * 1024, &latency),
            TARR_OK);
  EXPECT_GT(latency, 0.0);
  EXPECT_GT(tarr_allgather_mapping_seconds(h.allgather), 0.0);
  EXPECT_GT(tarr_framework_extraction_seconds(h.framework), 0.0);

  // Payload-verified execution through the C surface.
  EXPECT_EQ(tarr_allgather_verify(h.allgather, 512), TARR_OK);
}

TEST(CApi, ReorderedPathBeatsDefault) {
  Handles def, heu;
  ASSERT_EQ(tarr_machine_create_gpc(8, &def.machine), TARR_OK);
  heu.machine = nullptr;  // share def.machine; do not double-free
  ASSERT_EQ(tarr_comm_create(def.machine, 64, "cyclic:block", &def.comm),
            TARR_OK);
  ASSERT_EQ(tarr_framework_create(def.machine, 1, &def.framework), TARR_OK);

  ASSERT_EQ(tarr_allgather_create(def.framework, def.comm,
                                  "tarr_reorder=disabled", &def.allgather),
            TARR_OK);
  ASSERT_EQ(tarr_allgather_create(def.framework, def.comm, nullptr,
                                  &heu.allgather),
            TARR_OK);

  double t_def = 0.0, t_heu = 0.0;
  ASSERT_EQ(tarr_allgather_latency(def.allgather, 128 * 1024, &t_def),
            TARR_OK);
  ASSERT_EQ(tarr_allgather_latency(heu.allgather, 128 * 1024, &t_heu),
            TARR_OK);
  EXPECT_LT(t_heu, t_def);
}

TEST(CApi, ErrorsAreReported) {
  tarr_machine_t machine = nullptr;
  EXPECT_EQ(tarr_machine_create_gpc(0, &machine), TARR_ERROR);
  EXPECT_NE(std::string(tarr_last_error()).find("node"), std::string::npos);

  ASSERT_EQ(tarr_machine_create_gpc(1, &machine), TARR_OK);
  tarr_comm_t comm = nullptr;
  EXPECT_EQ(tarr_comm_create(machine, 9, "block-bunch", &comm), TARR_ERROR);
  EXPECT_EQ(tarr_comm_create(machine, 4, "diagonal", &comm), TARR_ERROR);
  EXPECT_NE(std::string(tarr_last_error()).find("diagonal"),
            std::string::npos);

  ASSERT_EQ(tarr_comm_create(machine, 4, nullptr, &comm), TARR_OK);
  EXPECT_EQ(tarr_comm_core_of(comm, 99), TARR_ERROR);

  tarr_framework_t fw = nullptr;
  ASSERT_EQ(tarr_framework_create(machine, 1, &fw), TARR_OK);
  tarr_allgather_t ag = nullptr;
  EXPECT_EQ(tarr_allgather_create(fw, comm, "tarr_mapper=magic", &ag),
            TARR_ERROR);

  // A successful call clears the error.
  ASSERT_EQ(tarr_allgather_create(fw, comm, "", &ag), TARR_OK);
  EXPECT_STREQ(tarr_last_error(), "");

  tarr_allgather_destroy(ag);
  tarr_framework_destroy(fw);
  tarr_comm_destroy(comm);
  tarr_machine_destroy(machine);
}

TEST(CApi, NullHandlesAreSafe) {
  tarr_machine_destroy(nullptr);
  tarr_comm_destroy(nullptr);
  tarr_framework_destroy(nullptr);
  tarr_allgather_destroy(nullptr);
  EXPECT_EQ(tarr_machine_total_cores(nullptr), TARR_ERROR);
  EXPECT_EQ(tarr_comm_size(nullptr), TARR_ERROR);
  double x = 0.0;
  EXPECT_EQ(tarr_allgather_latency(nullptr, 8, &x), TARR_ERROR);
}

}  // namespace
