#include "collectives/alltoall.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"
#include "core/framework.hpp"
#include "simmpi/layout.hpp"

namespace tarr::collectives {
namespace {

using core::ReorderFramework;
using simmpi::Communicator;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

using Param = std::tuple<AlltoallAlgo, int, bool>;

class AlltoallCorrectness : public ::testing::TestWithParam<Param> {};

TEST_P(AlltoallCorrectness, EveryPairDelivers) {
  const auto [algo, p, reorder] = GetParam();
  if (algo == AlltoallAlgo::PairwiseXor && !is_pow2(p)) GTEST_SKIP();
  const Machine m = Machine::gpc(std::max(1, (p + 7) / 8));
  if (p > m.total_cores()) GTEST_SKIP();
  const Communicator comm(
      m, make_layout(m, p,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Bunch}));

  Communicator use = comm;
  std::vector<Rank> oldrank = identity_permutation(p);
  if (reorder) {
    // Any reordering works: alltoall keeps output order in place.
    ReorderFramework fw(m);
    auto rc = fw.reorder(comm, mapping::Pattern::Ring);
    use = rc.comm;
    oldrank = rc.oldrank;
  }

  Engine eng(use, simmpi::CostConfig{}, ExecMode::Data, 64, 2 * p);
  const Usec t = run_alltoall(eng, algo, oldrank);
  if (p > 1) {
    EXPECT_GT(t, 0.0);
  }
  check_alltoall_output(eng, oldrank);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AlltoallCorrectness,
    ::testing::Combine(::testing::Values(AlltoallAlgo::PairwiseXor,
                                         AlltoallAlgo::Rotation),
                       ::testing::Values(1, 2, 3, 4, 7, 8, 16, 24, 32),
                       ::testing::Values(false, true)));

TEST(Alltoall, PairwiseXorRejectsNonPow2) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 6, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, 12);
  EXPECT_THROW(run_alltoall(eng, AlltoallAlgo::PairwiseXor), Error);
}

TEST(Alltoall, BufferTooSmallRejected) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 4, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, 7);
  EXPECT_THROW(run_alltoall(eng, AlltoallAlgo::Rotation), Error);
}

TEST(Alltoall, TagEncodesBothEndpoints) {
  EXPECT_NE(alltoall_tag(1, 2), alltoall_tag(2, 1));
  EXPECT_EQ(alltoall_tag(3, 4), alltoall_tag(3, 4));
}

TEST(Alltoall, TimedMatchesData) {
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, LayoutSpec{}));
  for (auto algo : {AlltoallAlgo::PairwiseXor, AlltoallAlgo::Rotation}) {
    Engine timed(comm, simmpi::CostConfig{}, ExecMode::Timed, 512, 64);
    Engine data(comm, simmpi::CostConfig{}, ExecMode::Data, 512, 64);
    EXPECT_NEAR(run_alltoall(timed, algo), run_alltoall(data, algo), 1e-9);
  }
}

TEST(CongestionStats, StageStatsExposeLinkLoads) {
  const Machine m = Machine::gpc(60);
  const Communicator comm(m, make_layout(m, 480, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Timed, 1024, 1);
  // 30 nodes of leaf 0 each firing one transfer to leaf 1: the shared
  // uplinks see an aggregated load well above one message.
  eng.begin_stage();
  for (int n = 0; n < 30; ++n)
    eng.copy(n * 8, 0, (30 + n) * 8, 0, 1);
  eng.end_stage();
  const auto& stats = eng.last_stage_stats();
  EXPECT_EQ(stats.transfers, 30);
  EXPECT_GT(stats.max_link_bytes, 2.0 * 1024);
  EXPECT_EQ(stats.max_qpi_bytes, 0.0);
  EXPECT_DOUBLE_EQ(eng.peak_link_bytes(), stats.max_link_bytes);
}

TEST(CongestionStats, QpiLoadTracked) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 8, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Timed, 4096, 1);
  eng.begin_stage();
  for (int k = 0; k < 4; ++k) eng.copy(k, 0, 4 + k, 0, 1);
  eng.end_stage();
  EXPECT_DOUBLE_EQ(eng.last_stage_stats().max_qpi_bytes, 4.0 * 4096);
  EXPECT_EQ(eng.last_stage_stats().max_link_bytes, 0.0);
}

TEST(CongestionStats, ResetPerStage) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Timed, 1024, 1);
  eng.begin_stage();
  for (int k = 0; k < 8; ++k) eng.copy(k, 0, 8 + k, 0, 1);
  eng.end_stage();
  const double first = eng.last_stage_stats().max_link_bytes;
  eng.begin_stage();
  eng.copy(0, 0, 8, 0, 1);
  eng.end_stage();
  EXPECT_LT(eng.last_stage_stats().max_link_bytes, first);
  EXPECT_DOUBLE_EQ(eng.peak_link_bytes(), first);  // peak persists
}

}  // namespace
}  // namespace tarr::collectives
