#include "collectives/hierarchical.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "collectives/orderfix.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"
#include "core/framework.hpp"
#include "simmpi/layout.hpp"

namespace tarr::collectives {
namespace {

using core::ReorderFramework;
using simmpi::Communicator;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

/// Parameter: (nodes, leader algo, intra algo, reorder?, fix).
using Param = std::tuple<int, AllgatherAlgo, IntraAlgo, bool, OrderFix>;

class HierAllgather : public ::testing::TestWithParam<Param> {};

TEST_P(HierAllgather, OutputInOriginalRankOrder) {
  const auto [nodes, leader_algo, intra, reorder, fix] = GetParam();
  const Machine m = Machine::gpc(nodes);
  const int p = m.total_cores();
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));

  Communicator use = comm;
  std::vector<Rank> oldrank = identity_permutation(p);
  if (reorder) {
    ReorderFramework fw(m);
    const auto pattern = leader_algo == AllgatherAlgo::RecursiveDoubling
                             ? mapping::Pattern::RecursiveDoubling
                             : mapping::Pattern::Ring;
    auto rc = fw.reorder_hierarchical(comm, pattern,
                                      intra == IntraAlgo::Binomial);
    use = rc.comm;
    oldrank = rc.oldrank;
  }

  Engine eng(use, simmpi::CostConfig{}, ExecMode::Data, 32, p);
  const HierAllgatherOptions opts{leader_algo, intra, fix};
  run_hier_allgather(eng, opts, oldrank);
  check_allgather_output(eng);
}

INSTANTIATE_TEST_SUITE_P(
    Reordered, HierAllgather,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(AllgatherAlgo::RecursiveDoubling,
                                         AllgatherAlgo::Ring),
                       ::testing::Values(IntraAlgo::Linear,
                                         IntraAlgo::Binomial),
                       ::testing::Values(true),
                       ::testing::Values(OrderFix::InitComm,
                                         OrderFix::EndShuffle)));

INSTANTIATE_TEST_SUITE_P(
    Identity, HierAllgather,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(AllgatherAlgo::RecursiveDoubling,
                                         AllgatherAlgo::Ring),
                       ::testing::Values(IntraAlgo::Linear,
                                         IntraAlgo::Binomial),
                       ::testing::Values(false),
                       ::testing::Values(OrderFix::None)));

// Ring leader phase tolerates non-power-of-two node counts.
INSTANTIATE_TEST_SUITE_P(
    NonPow2Nodes, HierAllgather,
    ::testing::Combine(::testing::Values(3, 5, 6),
                       ::testing::Values(AllgatherAlgo::Ring),
                       ::testing::Values(IntraAlgo::Linear,
                                         IntraAlgo::Binomial),
                       ::testing::Values(false),
                       ::testing::Values(OrderFix::None)));

INSTANTIATE_TEST_SUITE_P(
    NonPow2NodesReordered, HierAllgather,
    ::testing::Combine(::testing::Values(3, 5, 6),
                       ::testing::Values(AllgatherAlgo::Ring),
                       ::testing::Values(IntraAlgo::Linear,
                                         IntraAlgo::Binomial),
                       ::testing::Values(true),
                       ::testing::Values(OrderFix::InitComm)));

TEST(HierAllgatherErrors, RejectsCyclicLayout) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(
      m, make_layout(m, 16,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Bunch}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 32, 16);
  EXPECT_THROW(run_hier_allgather(eng, HierAllgatherOptions{}), Error);
}

TEST(HierAllgatherErrors, RdLeadersNeedPow2Nodes) {
  const Machine m = Machine::gpc(3);
  const Communicator comm(m, make_layout(m, 24, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 32, 24);
  HierAllgatherOptions opts;
  opts.leader_algo = AllgatherAlgo::RecursiveDoubling;
  EXPECT_THROW(run_hier_allgather(eng, opts), Error);
}

TEST(HierAllgatherErrors, BruckLeadersRejected) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 32, 16);
  HierAllgatherOptions opts;
  opts.leader_algo = AllgatherAlgo::Bruck;
  EXPECT_THROW(run_hier_allgather(eng, opts), Error);
}

TEST(HierAllgatherTiming, TimedMatchesData) {
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, LayoutSpec{}));
  for (auto leader : {AllgatherAlgo::RecursiveDoubling, AllgatherAlgo::Ring}) {
    for (auto intra : {IntraAlgo::Linear, IntraAlgo::Binomial}) {
      const HierAllgatherOptions opts{leader, intra, OrderFix::None};
      Engine timed(comm, simmpi::CostConfig{}, ExecMode::Timed, 512, 32);
      Engine data(comm, simmpi::CostConfig{}, ExecMode::Data, 512, 32);
      const Usec tt = run_hier_allgather(timed, opts);
      const Usec td = run_hier_allgather(data, opts);
      EXPECT_NEAR(tt, td, 1e-9 * td)
          << to_string(leader) << "/" << to_string(intra);
    }
  }
}

TEST(HierAllgatherTiming, HierarchyBeatsFlatRingOnCyclicPlacement) {
  // The motivation for hierarchical collectives: with every rank's neighbor
  // off-node (flat ring over block layout is fine, but a flat ring moves
  // p-1 rounds of inter-node boundary traffic; the hierarchical version
  // moves node chunks between leaders only).  At large message sizes the
  // hierarchical path should not be slower than some flat equivalent on the
  // same machine; we only check both paths complete and report sane times.
  const Machine m = Machine::gpc(8);
  const Communicator comm(m, make_layout(m, 64, LayoutSpec{}));
  Engine hier(comm, simmpi::CostConfig{}, ExecMode::Timed, 4096, 64);
  const Usec t =
      run_hier_allgather(hier, HierAllgatherOptions{AllgatherAlgo::Ring,
                                                    IntraAlgo::Binomial,
                                                    OrderFix::None});
  EXPECT_GT(t, 0.0);
}

}  // namespace
}  // namespace tarr::collectives
