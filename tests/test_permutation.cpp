#include "common/permutation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tarr {
namespace {

TEST(Permutation, IdentityIsPermutation) {
  EXPECT_TRUE(is_permutation_of_iota(identity_permutation(5)));
  EXPECT_TRUE(is_permutation_of_iota({}));
}

TEST(Permutation, DetectsNonPermutations) {
  EXPECT_FALSE(is_permutation_of_iota({0, 0}));
  EXPECT_FALSE(is_permutation_of_iota({1, 2}));
  EXPECT_FALSE(is_permutation_of_iota({-1, 0}));
  EXPECT_FALSE(is_permutation_of_iota({0, 2}));
  EXPECT_TRUE(is_permutation_of_iota({2, 0, 1}));
}

TEST(Permutation, InvertSmall) {
  const std::vector<int> p{2, 0, 1};
  const std::vector<int> inv = invert_permutation(p);
  EXPECT_EQ(inv, (std::vector<int>{1, 2, 0}));
}

TEST(Permutation, InvertRejectsInvalid) {
  EXPECT_THROW(invert_permutation({0, 0, 1}), Error);
}

TEST(Permutation, ComposeWithInverseGivesIdentity) {
  Rng rng(99);
  for (int n : {1, 2, 5, 17, 64}) {
    // Fisher-Yates shuffle of the identity.
    std::vector<int> p = identity_permutation(n);
    for (int i = n - 1; i > 0; --i)
      std::swap(p[i], p[rng.next_below(i + 1)]);
    const auto inv = invert_permutation(p);
    EXPECT_EQ(compose_permutations(inv, p), identity_permutation(n));
    EXPECT_EQ(compose_permutations(p, inv), identity_permutation(n));
  }
}

TEST(Permutation, ComposeSizeMismatchThrows) {
  EXPECT_THROW(compose_permutations({0, 1}, {0}), Error);
}

TEST(Permutation, ComposeAppliesRightThenLeft) {
  // a after b: result[i] = a[b[i]].
  const std::vector<int> a{1, 2, 0};
  const std::vector<int> b{2, 1, 0};
  EXPECT_EQ(compose_permutations(a, b), (std::vector<int>{0, 2, 1}));
}

}  // namespace
}  // namespace tarr
