#include "collectives/selector.hpp"

#include <gtest/gtest.h>

namespace tarr::collectives {
namespace {

TEST(Selector, SmallMessagesUseRecursiveDoubling) {
  EXPECT_EQ(select_allgather_algo(4096, 1),
            AllgatherAlgo::RecursiveDoubling);
  EXPECT_EQ(select_allgather_algo(4096, 16 * 1024),
            AllgatherAlgo::RecursiveDoubling);
}

TEST(Selector, LargeMessagesUseRing) {
  EXPECT_EQ(select_allgather_algo(4096, 32 * 1024), AllgatherAlgo::Ring);
  EXPECT_EQ(select_allgather_algo(4096, 256 * 1024), AllgatherAlgo::Ring);
  EXPECT_EQ(select_allgather_algo(6, 1 << 20), AllgatherAlgo::Ring);
}

TEST(Selector, NonPow2SmallUsesBruck) {
  EXPECT_EQ(select_allgather_algo(6, 64), AllgatherAlgo::Bruck);
  EXPECT_EQ(select_allgather_algo(1000, 1024), AllgatherAlgo::Bruck);
}

TEST(Selector, ThresholdIsConfigurable) {
  SelectorConfig cfg;
  cfg.rd_max_msg = 1024;
  EXPECT_EQ(select_allgather_algo(64, 1023, cfg),
            AllgatherAlgo::RecursiveDoubling);
  EXPECT_EQ(select_allgather_algo(64, 1024, cfg), AllgatherAlgo::Ring);
}

TEST(Selector, BoundaryIsExclusive) {
  SelectorConfig cfg;
  EXPECT_EQ(select_allgather_algo(64, cfg.rd_max_msg - 1, cfg),
            AllgatherAlgo::RecursiveDoubling);
  EXPECT_EQ(select_allgather_algo(64, cfg.rd_max_msg, cfg),
            AllgatherAlgo::Ring);
}

TEST(CollectiveNames, ToString) {
  EXPECT_STREQ(to_string(AllgatherAlgo::RecursiveDoubling),
               "recursive-doubling");
  EXPECT_STREQ(to_string(AllgatherAlgo::Ring), "ring");
  EXPECT_STREQ(to_string(AllgatherAlgo::Bruck), "bruck");
  EXPECT_STREQ(to_string(OrderFix::InitComm), "initComm");
  EXPECT_STREQ(to_string(OrderFix::EndShuffle), "endShfl");
  EXPECT_STREQ(to_string(OrderFix::None), "none");
  EXPECT_STREQ(to_string(IntraAlgo::Linear), "linear");
  EXPECT_STREQ(to_string(IntraAlgo::Binomial), "binomial");
}

}  // namespace
}  // namespace tarr::collectives
