#include "common/table.hpp"

#include <gtest/gtest.h>

namespace tarr {
namespace {

TEST(TextTable, NumFormatsDecimals) {
  EXPECT_EQ(TextTable::num(1.234, 2), "1.23");
  EXPECT_EQ(TextTable::num(1.236, 2), "1.24");
  EXPECT_EQ(TextTable::num(-5.0, 0), "-5");
  EXPECT_EQ(TextTable::num(0.5, 1), "0.5");
}

TEST(TextTable, BytesFormatsUnits) {
  EXPECT_EQ(TextTable::bytes(1), "1");
  EXPECT_EQ(TextTable::bytes(512), "512");
  EXPECT_EQ(TextTable::bytes(1024), "1K");
  EXPECT_EQ(TextTable::bytes(256 * 1024), "256K");
  EXPECT_EQ(TextTable::bytes(3 * 1024 * 1024), "3M");
  EXPECT_EQ(TextTable::bytes(1536), "1536");  // not a whole K
  EXPECT_EQ(TextTable::bytes(1ll << 30), "1G");
}

TEST(TextTable, RenderContainsAllCells) {
  TextTable t;
  t.set_header({"msg", "impr"});
  t.add_row({"1K", "42.00"});
  t.add_row({"256K", "-3.50"});
  const std::string out = t.render();
  EXPECT_NE(out.find("msg"), std::string::npos);
  EXPECT_NE(out.find("42.00"), std::string::npos);
  EXPECT_NE(out.find("256K"), std::string::npos);
  EXPECT_NE(out.find("-3.50"), std::string::npos);
}

TEST(TextTable, RenderAlignsColumns) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"xxxx", "1"});
  t.add_row({"y", "22"});
  const std::string out = t.render();
  // Every line has the same length (trailing spaces aside, the second
  // column starts at a fixed offset).
  std::size_t first_nl = out.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ShortRowsAreAllowed) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.render());
}

TEST(TextTable, EmptyTableRenders) {
  TextTable t;
  EXPECT_EQ(t.render(), "");
}

}  // namespace
}  // namespace tarr
