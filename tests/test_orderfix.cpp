#include "collectives/orderfix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/permutation.hpp"
#include "simmpi/layout.hpp"

namespace tarr::collectives {
namespace {

using simmpi::Communicator;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

Engine make_engine(const Communicator& c, ExecMode mode) {
  return Engine(c, simmpi::CostConfig{}, mode, 64, c.size());
}

TEST(OrderFix, SeedPlacesOldRankTags) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 4, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Data);
  const std::vector<Rank> oldrank{2, 0, 3, 1};
  seed_allgather_inputs(e, oldrank);
  for (Rank j = 0; j < 4; ++j)
    EXPECT_EQ(e.block(j, j), static_cast<std::uint32_t>(oldrank[j]));
}

TEST(OrderFix, InitCommRelocatesInputs) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 4, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Data);
  const std::vector<Rank> oldrank{2, 0, 3, 1};
  seed_allgather_inputs(e, oldrank);
  init_comm_exchange(e, oldrank);
  // After the exchange, new rank j's slot j holds original rank j's data.
  for (Rank j = 0; j < 4; ++j)
    EXPECT_EQ(e.block(j, j), static_cast<std::uint32_t>(j));
}

TEST(OrderFix, InitCommIdentityIsFree) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 4, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Timed);
  init_comm_exchange(e, identity_permutation(4));
  EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(OrderFix, InitCommCostsOneStage) {
  const Machine m = Machine::gpc(2);
  const Communicator c(m, make_layout(m, 16, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Timed);
  std::vector<Rank> swap = identity_permutation(16);
  std::swap(swap[0], swap[15]);  // one cross-node exchange pair
  init_comm_exchange(e, swap);
  EXPECT_GT(e.total(), 0.0);
}

TEST(OrderFix, EndShuffleReordersOutput) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 4, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Data);
  const std::vector<Rank> oldrank{2, 0, 3, 1};
  // Simulate a finished allgather in new-rank order: slot j holds the block
  // of original rank oldrank[j].
  for (Rank r = 0; r < 4; ++r)
    for (int b = 0; b < 4; ++b)
      e.set_block(r, b, static_cast<std::uint32_t>(oldrank[b]));
  end_shuffle(e, oldrank);
  check_allgather_output(e);
}

TEST(OrderFix, CheckRejectsWrongOrder) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 2, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Data);
  e.set_block(0, 0, 1u);
  e.set_block(0, 1, 0u);
  e.set_block(1, 0, 0u);
  e.set_block(1, 1, 1u);
  EXPECT_THROW(check_allgather_output(e), Error);
}

TEST(OrderFix, CheckRequiresDataMode) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 2, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Timed);
  EXPECT_THROW(check_allgather_output(e), Error);
}

TEST(OrderFix, SizeMismatchesRejected) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 4, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Data);
  EXPECT_THROW(seed_allgather_inputs(e, identity_permutation(3)), Error);
  EXPECT_THROW(init_comm_exchange(e, identity_permutation(5)), Error);
  EXPECT_THROW(end_shuffle(e, identity_permutation(2)), Error);
}

}  // namespace
}  // namespace tarr::collectives
