// Monte Carlo fault-campaign library: determinism, row accounting, and the
// stale == remap coincidence at zero failures.

#include "fault/campaign.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tarr::fault {
namespace {

CampaignConfig tiny_config() {
  CampaignConfig cfg;
  cfg.num_nodes = 8;
  cfg.tree.nodes_per_leaf = 2;  // 8 nodes span all 4 leaves
  cfg.max_ranks = 32;
  cfg.failure_counts = {0, 2};
  cfg.trials = 2;
  cfg.seed = 1234;
  return cfg;
}

TEST(Campaign, DeterministicFromSeed) {
  const CampaignResult a = run_fault_campaign(tiny_config());
  const CampaignResult b = run_fault_campaign(tiny_config());
  EXPECT_EQ(a.csv(), b.csv());
  EXPECT_EQ(a.json(), b.json());
  EXPECT_EQ(a.partitioned_trials, b.partitioned_trials);
}

TEST(Campaign, RowAccounting) {
  const CampaignConfig cfg = tiny_config();
  const CampaignResult r = run_fault_campaign(cfg);
  // counts x trials x 4 patterns, partitioned or not.
  EXPECT_EQ(r.rows.size(),
            cfg.failure_counts.size() * cfg.trials * 4u);
  for (const CampaignRow& row : r.rows) {
    if (row.partitioned) continue;
    EXPECT_GT(row.ranks, 0);
    EXPECT_GE(row.survivors, row.ranks);
    EXPECT_GT(row.baseline_usec, 0.0);
    EXPECT_GT(row.stale_usec, 0.0);
    EXPECT_GT(row.remap_usec, 0.0);
  }
}

TEST(Campaign, ZeroFailuresStaleEqualsRemap) {
  // With no failures the pristine and degraded distance matrices coincide
  // and the mapping RNG streams are shared, so the two policies produce the
  // same mapping and the same price.
  const CampaignResult r = run_fault_campaign(tiny_config());
  for (const CampaignRow& row : r.rows) {
    if (row.failures != 0) continue;
    ASSERT_FALSE(row.partitioned);
    EXPECT_EQ(row.stale_usec, row.remap_usec) << row.pattern;
    EXPECT_EQ(row.survivors, row.ranks);
  }
}

TEST(Campaign, NodeFailuresShrinkTheJob) {
  CampaignConfig cfg = tiny_config();
  cfg.kind = FailureKind::Nodes;
  cfg.failure_counts = {2};
  const CampaignResult r = run_fault_campaign(cfg);
  for (const CampaignRow& row : r.rows) {
    if (row.partitioned) continue;
    // 8 nodes x 8 cores capped at 32 ranks; 2 dead nodes cost at least one
    // rank from the 32-rank parent unless the dead nodes were unused.
    EXPECT_LE(row.survivors, 32);
    EXPECT_LE(row.ranks, row.survivors);
  }
  EXPECT_EQ(r.rows.size(), 8u);  // 1 count x 2 trials x 4 patterns
}

TEST(Campaign, OutputsCarryEveryRow) {
  const CampaignResult r = run_fault_campaign(tiny_config());
  const std::string csv = r.csv();
  const std::string json = r.json();
  std::size_t csv_lines = 0;
  for (char c : csv) csv_lines += c == '\n';
  EXPECT_EQ(csv_lines, r.rows.size() + 1);  // header + rows
  std::size_t json_rows = 0;
  std::string::size_type pos = 0;
  while ((pos = json.find("\"pattern\"", pos)) != std::string::npos) {
    ++json_rows;
    ++pos;
  }
  EXPECT_EQ(json_rows, r.rows.size());
  EXPECT_NE(r.summary().find("Fault campaign"), std::string::npos);
}

TEST(Campaign, RejectsMalformedConfigs) {
  CampaignConfig cfg = tiny_config();
  cfg.trials = 0;
  EXPECT_THROW(run_fault_campaign(cfg), Error);
  cfg = tiny_config();
  cfg.failure_counts = {};
  EXPECT_THROW(run_fault_campaign(cfg), Error);
  cfg = tiny_config();
  cfg.failure_counts = {-1};
  EXPECT_THROW(run_fault_campaign(cfg), Error);
  cfg = tiny_config();
  cfg.transient.drop_prob = 2.0;
  EXPECT_THROW(run_fault_campaign(cfg), Error);
  cfg = tiny_config();
  cfg.tree.num_leaves = 0;
  EXPECT_THROW(run_fault_campaign(cfg), Error);
}

TEST(Campaign, TransientFaultsComposeWithCampaign) {
  CampaignConfig cfg = tiny_config();
  cfg.failure_counts = {1};
  cfg.trials = 1;
  cfg.transient.drop_prob = 0.05;
  const CampaignResult with = run_fault_campaign(cfg);
  cfg.transient.drop_prob = 0.0;
  const CampaignResult without = run_fault_campaign(cfg);
  ASSERT_EQ(with.rows.size(), without.rows.size());
  for (std::size_t i = 0; i < with.rows.size(); ++i) {
    if (with.rows[i].partitioned) continue;
    EXPECT_GE(with.rows[i].baseline_usec, without.rows[i].baseline_usec);
  }
}

}  // namespace
}  // namespace tarr::fault
