#include "analyze/analyzer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analyze/mutate.hpp"
#include "analyze/static_auditor.hpp"
#include "collectives/allgather.hpp"
#include "collectives/allreduce.hpp"
#include "collectives/alltoall.hpp"
#include "collectives/contracts.hpp"
#include "collectives/gather_bcast.hpp"
#include "collectives/hierarchical.hpp"
#include "collectives/orderfix.hpp"
#include "common/permutation.hpp"
#include "core/framework.hpp"
#include "fault/degraded.hpp"
#include "fault/shrink.hpp"
#include "report/record.hpp"
#include "simmpi/layout.hpp"

namespace tarr::analyze {
namespace {

using collectives::AllgatherAlgo;
using collectives::AllgatherOptions;
using collectives::AlltoallAlgo;
using collectives::OrderFix;
using collectives::TreeAlgo;
using report::ScheduleRecord;
using report::ScheduleRecorder;
using simmpi::Communicator;
using simmpi::CostConfig;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

/// Record one Data-mode run of `run` on a fresh engine.
template <typename Runner>
ScheduleRecord record_run(Engine& eng, Runner&& run) {
  ScheduleRecorder rec;
  eng.set_trace_sink(&rec);
  run(eng);
  eng.set_trace_sink(nullptr);
  return rec.take();
}

void expect_certified(const ScheduleRecord& rec, const Machine& m,
                      const Contract& c) {
  const Certificate cert = analyze(rec, m, c);
  EXPECT_TRUE(cert.certified) << cert.format();
}

TEST(AnalyzeCertifies, AllgatherAllAlgosIdentity) {
  const Machine m = Machine::gpc(2);
  const int p = 16;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  const auto oldrank = identity_permutation(p);
  for (AllgatherAlgo algo : {AllgatherAlgo::RecursiveDoubling,
                             AllgatherAlgo::Ring, AllgatherAlgo::Bruck}) {
    Engine eng(comm, CostConfig{}, ExecMode::Data, 256, p);
    const ScheduleRecord rec = record_run(eng, [&](Engine& e) {
      collectives::run_allgather(e, AllgatherOptions{algo, OrderFix::None},
                                 oldrank);
    });
    collectives::check_allgather_output(eng);  // dynamic audit
    expect_certified(rec, m, collectives::contract_allgather(p, p, algo,
                                                             oldrank));
  }
}

TEST(AnalyzeCertifies, AllgatherReorderedBothFixes) {
  const Machine m = Machine::gpc(4);
  const int p = 32;
  const Communicator comm(
      m, make_layout(m, p,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Scatter}));
  core::ReorderFramework fw(m);
  const auto rc = fw.reorder(comm, mapping::Pattern::RecursiveDoubling);
  for (OrderFix fix : {OrderFix::InitComm, OrderFix::EndShuffle}) {
    Engine eng(rc.comm, CostConfig{}, ExecMode::Data, 256, p);
    const ScheduleRecord rec = record_run(eng, [&](Engine& e) {
      collectives::run_allgather(
          e, AllgatherOptions{AllgatherAlgo::RecursiveDoubling, fix},
          rc.oldrank);
    });
    collectives::check_allgather_output(eng);
    expect_certified(rec, m,
                     collectives::contract_allgather(
                         p, p, AllgatherAlgo::RecursiveDoubling, rc.oldrank));
  }
  // Ring and Bruck carry their own order correction.
  for (AllgatherAlgo algo : {AllgatherAlgo::Ring, AllgatherAlgo::Bruck}) {
    Engine eng(rc.comm, CostConfig{}, ExecMode::Data, 256, p);
    const ScheduleRecord rec = record_run(eng, [&](Engine& e) {
      collectives::run_allgather(e, AllgatherOptions{algo, OrderFix::None},
                                 rc.oldrank);
    });
    collectives::check_allgather_output(eng);
    expect_certified(rec, m, collectives::contract_allgather(p, p, algo,
                                                             rc.oldrank));
  }
}

TEST(AnalyzeCertifies, HierarchicalAndPipelined) {
  const Machine m = Machine::gpc(2);
  const int p = m.total_cores();
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  const auto oldrank = identity_permutation(p);
  {
    Engine eng(comm, CostConfig{}, ExecMode::Data, 256, p);
    const ScheduleRecord rec = record_run(eng, [&](Engine& e) {
      collectives::run_hier_allgather(
          e, collectives::HierAllgatherOptions{}, oldrank);
    });
    collectives::check_allgather_output(eng);
    expect_certified(
        rec, m, collectives::contract_hier_allgather(p, p, oldrank, false));
  }
  {
    Engine eng(comm, CostConfig{}, ExecMode::Data, 256, p);
    const ScheduleRecord rec = record_run(eng, [&](Engine& e) {
      collectives::run_hier_allgather_pipelined(
          e, collectives::IntraAlgo::Binomial, OrderFix::None, oldrank);
    });
    collectives::check_allgather_output(eng);
    expect_certified(
        rec, m, collectives::contract_hier_allgather(p, p, oldrank, true));
  }
}

TEST(AnalyzeCertifies, GatherBcastScatterFamilies) {
  const Machine m = Machine::gpc(2);
  const int p = 16;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  const auto oldrank = identity_permutation(p);
  for (TreeAlgo algo : {TreeAlgo::Linear, TreeAlgo::Binomial}) {
    Engine eng(comm, CostConfig{}, ExecMode::Data, 256, p);
    const ScheduleRecord rec = record_run(eng, [&](Engine& e) {
      collectives::run_gather(e, algo, OrderFix::None, oldrank);
    });
    expect_certified(rec, m,
                     collectives::contract_gather(p, p, algo, oldrank));
  }
  for (TreeAlgo algo : {TreeAlgo::Linear, TreeAlgo::Binomial}) {
    Engine eng(comm, CostConfig{}, ExecMode::Data, 256, 1);
    const ScheduleRecord rec = record_run(
        eng, [&](Engine& e) { collectives::run_bcast(e, algo); });
    expect_certified(rec, m, collectives::contract_bcast(p, 1, algo));
  }
  for (AllgatherAlgo ag : {AllgatherAlgo::RecursiveDoubling,
                           AllgatherAlgo::Ring}) {
    Engine eng(comm, CostConfig{}, ExecMode::Data, 256, p);
    const ScheduleRecord rec = record_run(eng, [&](Engine& e) {
      collectives::run_bcast_scatter_allgather(e, ag);
    });
    expect_certified(rec, m,
                     collectives::contract_bcast_scatter_allgather(p, p, ag));
  }
  for (TreeAlgo algo : {TreeAlgo::Linear, TreeAlgo::Binomial}) {
    Engine eng(comm, CostConfig{}, ExecMode::Data, 256, p);
    const ScheduleRecord rec = record_run(eng, [&](Engine& e) {
      collectives::run_scatter(e, algo, oldrank);
    });
    expect_certified(rec, m,
                     collectives::contract_scatter(p, p, algo, oldrank));
  }
}

TEST(AnalyzeCertifies, ReorderedScatterExercisesPermuteEvents) {
  // Binomial scatter pre-permutes every buffer with local_permute_all; a
  // reordered communicator makes that a real (non-identity) permutation,
  // so this certifies the analyzer's §V-B permutation semantics.
  const Machine m = Machine::gpc(2);
  const int p = 16;
  const Communicator comm(
      m, make_layout(m, p,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Scatter}));
  core::ReorderFramework fw(m);
  const auto rc = fw.reorder(comm, mapping::Pattern::BinomialGather);
  Engine eng(rc.comm, CostConfig{}, ExecMode::Data, 256, p);
  const ScheduleRecord rec = record_run(eng, [&](Engine& e) {
    collectives::run_scatter(e, TreeAlgo::Binomial, rc.oldrank);
  });
  bool saw_permute = false;
  for (const auto& e : rec.extras) saw_permute |= !e.dst_of_block.empty();
  EXPECT_TRUE(saw_permute || rc.oldrank == identity_permutation(p));
  expect_certified(
      rec, m, collectives::contract_scatter(p, p, TreeAlgo::Binomial,
                                            rc.oldrank));
}

TEST(AnalyzeCertifies, AlltoallBothAlgosReordered) {
  const Machine m = Machine::gpc(2);
  const int p = 16;
  const Communicator comm(
      m, make_layout(m, p,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Scatter}));
  core::ReorderFramework fw(m);
  const auto rc = fw.reorder(comm, mapping::Pattern::RecursiveDoubling);
  for (AlltoallAlgo algo : {AlltoallAlgo::Rotation,
                            AlltoallAlgo::PairwiseXor}) {
    Engine eng(rc.comm, CostConfig{}, ExecMode::Data, 64, 2 * p);
    const ScheduleRecord rec = record_run(eng, [&](Engine& e) {
      collectives::run_alltoall(e, algo, rc.oldrank);
    });
    collectives::check_alltoall_output(eng, rc.oldrank);
    expect_certified(rec, m,
                     collectives::contract_alltoall(p, 2 * p, algo,
                                                    rc.oldrank));
  }
}

TEST(AnalyzeCertifies, AllreduceRdAndRabenseifner) {
  const Machine m = Machine::gpc(2);
  const int p = 16;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  {
    Engine eng(comm, CostConfig{}, ExecMode::Data, 256, 1);
    const ScheduleRecord rec = record_run(eng, [&](Engine& e) {
      for (Rank r = 0; r < p; ++r) e.set_block(r, 0, 0x1000u + 37u * r);
      collectives::run_allreduce_rd(e);
    });
    expect_certified(rec, m, collectives::contract_allreduce_rd(p, 1));
  }
  {
    Engine eng(comm, CostConfig{}, ExecMode::Data, 64, p);
    const ScheduleRecord rec = record_run(eng, [&](Engine& e) {
      for (Rank r = 0; r < p; ++r)
        for (int b = 0; b < p; ++b)
          e.set_block(r, b, 0x10000u + 101u * r + b);
      collectives::run_allreduce_rabenseifner(e);
    });
    expect_certified(rec, m,
                     collectives::contract_allreduce_rabenseifner(p, p));
  }
}

TEST(AnalyzeCertifies, ShrunkenCommunicator) {
  // Post-fault: a node dies, the communicator shrinks, and the standard
  // contract at the survivor count applies verbatim.
  const Machine base = Machine::gpc(8);
  const Communicator parent(base, make_layout(base, base.total_cores(), {}));
  const fault::DegradedTopology topo(base, fault::FaultMask{}.fail_node(3));
  const fault::ShrunkComm shrunk = fault::shrink_communicator(topo, parent);
  const int s = shrunk.comm.size();
  const auto oldrank = identity_permutation(s);
  Engine eng(shrunk.comm, CostConfig{}, ExecMode::Data, 256, s);
  const ScheduleRecord rec = record_run(eng, [&](Engine& e) {
    collectives::run_allgather(
        e, AllgatherOptions{AllgatherAlgo::Ring, OrderFix::None}, oldrank);
  });
  collectives::check_allgather_output(eng);
  expect_certified(rec, topo.machine(),
                   collectives::contract_allgather(s, s, AllgatherAlgo::Ring,
                                                   oldrank));
}

TEST(StaticAuditorTest, CertifiesThroughEngineSplice) {
  const Machine m = Machine::gpc(2);
  const int p = 16;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Engine eng(comm, CostConfig{}, ExecMode::Data, 256, p);
  const StaticAuditor auditor;
  const Certificate cert = auditor.certify_or_throw(
      eng,
      collectives::contract_allgather(p, p, AllgatherAlgo::RecursiveDoubling,
                                      identity_permutation(p)),
      [&](Engine& e) {
        collectives::run_allgather(
            e,
            AllgatherOptions{AllgatherAlgo::RecursiveDoubling,
                             OrderFix::None});
      });
  EXPECT_TRUE(cert.certified);
  EXPECT_GT(cert.stages_checked, 0);
  collectives::check_allgather_output(eng);  // the same run, audited twice
  EXPECT_EQ(eng.trace_sink(), nullptr);      // previous sink restored
}

/// One recorded recursive-doubling allgather, the mutation harness's prey.
ScheduleRecord rd_record(int p) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Engine eng(comm, CostConfig{}, ExecMode::Data, 256, p);
  return record_run(eng, [](Engine& e) {
    collectives::run_allgather(
        e, AllgatherOptions{AllgatherAlgo::RecursiveDoubling,
                            OrderFix::None});
  });
}

TEST(AnalyzeRejects, EachMutationClassWithDistinctLeadingFinding) {
  const Machine m = Machine::gpc(1);
  const int p = 8;
  const Contract contract = collectives::contract_allgather(
      p, p, AllgatherAlgo::RecursiveDoubling, identity_permutation(p));
  const ScheduleRecord pristine = rd_record(p);
  ASSERT_TRUE(analyze(pristine, m, contract).certified);

  const struct {
    Mutation mutation;
    Property expect_leading;
  } cases[] = {
      {Mutation::DropTransfer, Property::ContractViolation},
      {Mutation::SwapStages, Property::UninitializedRead},
      {Mutation::TruncateBytes, Property::ByteConservation},
      {Mutation::DuplicateBlock, Property::WriteConflict},
  };
  std::vector<Property> leadings;
  for (const auto& c : cases) {
    ScheduleRecord mutated = pristine;
    const std::string what = apply_mutation(mutated, c.mutation, 42);
    const Certificate cert = analyze(mutated, m, contract);
    EXPECT_FALSE(cert.certified)
        << to_string(c.mutation) << " (" << what << ") went undetected";
    EXPECT_EQ(cert.leading(), c.expect_leading)
        << to_string(c.mutation) << " (" << what << ") diagnosed as "
        << to_string(cert.leading()) << ":\n"
        << cert.format();
    leadings.push_back(cert.leading());
  }
  // The four classes are told apart, not lumped into one generic failure.
  for (std::size_t i = 0; i < leadings.size(); ++i)
    for (std::size_t j = i + 1; j < leadings.size(); ++j)
      EXPECT_NE(leadings[i], leadings[j]);
}

TEST(AnalyzeRejects, CounterexamplesAreByteStableAcrossRuns) {
  const Machine m = Machine::gpc(1);
  const int p = 8;
  const Contract contract = collectives::contract_allgather(
      p, p, AllgatherAlgo::RecursiveDoubling, identity_permutation(p));
  for (Mutation mu : {Mutation::DropTransfer, Mutation::SwapStages,
                      Mutation::TruncateBytes, Mutation::DuplicateBlock}) {
    ScheduleRecord a = rd_record(p);
    ScheduleRecord b = rd_record(p);
    const std::string what_a = apply_mutation(a, mu, 7);
    const std::string what_b = apply_mutation(b, mu, 7);
    EXPECT_EQ(what_a, what_b);
    EXPECT_EQ(analyze(a, m, contract).format(),
              analyze(b, m, contract).format());
  }
}

TEST(AnalyzeParity, StaticStageLoadsEqualTraceCounters) {
  const Machine m = Machine::gpc(4);
  const int p = 32;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Engine eng(comm, CostConfig{}, ExecMode::Data, 256, p);
  const ScheduleRecord rec = record_run(eng, [](Engine& e) {
    collectives::run_allgather(
        e, AllgatherOptions{AllgatherAlgo::RecursiveDoubling,
                            OrderFix::None});
  });
  ASSERT_FALSE(rec.loads.empty());
  for (const auto& s : rec.stages) {
    const auto recorded = rec.loads_of(s);
    const auto computed = static_stage_loads(rec, s, m);
    ASSERT_EQ(recorded.size(), computed.size());
    for (std::size_t i = 0; i < computed.size(); ++i) {
      EXPECT_EQ(recorded[i].qpi, computed[i].qpi);
      EXPECT_EQ(recorded[i].id, computed[i].id);
      EXPECT_EQ(recorded[i].dir, computed[i].dir);
      EXPECT_EQ(recorded[i].bytes, computed[i].bytes);  // bit-exact
    }
  }
}

TEST(AnalyzeParity, StaticLoadsFollowRetransmissionAttempts) {
  // Transient faults retransmit: every attempt reloads the wire, and the
  // static replay must multiply accordingly to match the traced counters.
  const Machine m = Machine::gpc(2);
  const int p = 16;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  simmpi::TransientFaultConfig faults;
  faults.drop_prob = 0.2;
  faults.seed = 5;
  Engine eng(comm, CostConfig{}, ExecMode::Data, 256, p);
  eng.set_transient_faults(faults);
  const ScheduleRecord rec = record_run(eng, [](Engine& e) {
    collectives::run_allgather(
        e, AllgatherOptions{AllgatherAlgo::RecursiveDoubling,
                            OrderFix::None});
  });
  bool retried = false;
  for (const auto& t : rec.transfers) retried |= t.attempts > 1;
  ASSERT_TRUE(retried);
  const Contract contract = collectives::contract_allgather(
      p, p, AllgatherAlgo::RecursiveDoubling, identity_permutation(p));
  const Certificate cert = analyze(rec, m, contract);
  EXPECT_TRUE(cert.certified) << cert.format();
  EXPECT_FALSE(cert.has(Property::CounterMismatch));
}

TEST(AnalyzeRejects, TimedRepeatCompressedRecordNeedsDataMode) {
  const Machine m = Machine::gpc(1);
  const int p = 8;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, p);
  ScheduleRecorder sink;
  eng.set_trace_sink(&sink);
  collectives::run_allgather(
      eng, AllgatherOptions{AllgatherAlgo::Ring, OrderFix::None});
  const ScheduleRecord rec = sink.take();
  const Certificate cert = analyze(
      rec, m,
      collectives::contract_allgather(p, p, AllgatherAlgo::Ring,
                                      identity_permutation(p)));
  EXPECT_FALSE(cert.certified);
  EXPECT_TRUE(cert.has(Property::Structure)) << cert.format();
}

TEST(AnalyzeOptionsTest, CapacityHazardWarnsWithoutRejecting) {
  const Machine m = Machine::gpc(4);
  const int p = 32;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Engine eng(comm, CostConfig{}, ExecMode::Data, 1 << 20, p);
  const ScheduleRecord rec = record_run(eng, [](Engine& e) {
    collectives::run_allgather(
        e, AllgatherOptions{AllgatherAlgo::RecursiveDoubling,
                            OrderFix::None});
  });
  AnalyzeOptions opts;
  opts.max_link_load = 1e-6;  // everything is a hazard at this bound
  const Certificate cert = analyze(
      rec, m,
      collectives::contract_allgather(p, p,
                                      AllgatherAlgo::RecursiveDoubling,
                                      identity_permutation(p)),
      opts);
  EXPECT_TRUE(cert.certified) << cert.format();  // warnings do not reject
  EXPECT_TRUE(cert.has(Property::CapacityHazard));
}

}  // namespace
}  // namespace tarr::analyze
