// Tests for the deep intra-node hierarchy (paper §VII future work: nodes
// with more cores and an extra L3-complex level) and for distance-matrix
// persistence (§IV: distances "extracted once, and saved for future
// references").

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "mapping/comparators.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/mapcost.hpp"
#include "topology/distance.hpp"

namespace tarr::topology {
namespace {

/// A 32-core EPYC-style node: 2 sockets x 4 complexes x 4 cores.
NodeShape deep_shape() { return NodeShape{2, 16, 4}; }

TEST(DeepNode, ShapeAccessors) {
  const NodeShape s = deep_shape();
  EXPECT_EQ(s.cores_per_node(), 32);
  EXPECT_EQ(s.complexes_per_socket(), 4);
  EXPECT_EQ(NodeShape{}.complexes_per_socket(), 1);
}

TEST(DeepNode, CoreLocation) {
  const NodeShape s = deep_shape();
  EXPECT_EQ(core_location(s, 0).complex_in_socket, 0);
  EXPECT_EQ(core_location(s, 3).complex_in_socket, 0);
  EXPECT_EQ(core_location(s, 4).complex_in_socket, 1);
  EXPECT_EQ(core_location(s, 15).complex_in_socket, 3);
  EXPECT_EQ(core_location(s, 16).socket, 1);
  EXPECT_EQ(core_location(s, 16).complex_in_socket, 0);
}

TEST(DeepNode, IntranodeLevels) {
  const NodeShape s = deep_shape();
  EXPECT_EQ(intranode_level(s, 5, 5), IntraLevel::SameCore);
  EXPECT_EQ(intranode_level(s, 0, 3), IntraLevel::SameComplex);
  EXPECT_EQ(intranode_level(s, 0, 4), IntraLevel::CrossComplex);
  EXPECT_EQ(intranode_level(s, 0, 15), IntraLevel::CrossComplex);
  EXPECT_EQ(intranode_level(s, 0, 16), IntraLevel::CrossSocket);
  EXPECT_EQ(intranode_level(s, 31, 0), IntraLevel::CrossSocket);
}

TEST(DeepNode, FlatShapeHasNoCrossComplex) {
  const NodeShape flat{2, 4};
  for (int a = 0; a < 8; ++a)
    for (int b = 0; b < 8; ++b)
      EXPECT_NE(intranode_level(flat, a, b), IntraLevel::CrossComplex);
}

TEST(DeepNode, MisalignedComplexRejected) {
  const NodeShape bad{2, 4, 3};  // 3 does not divide 4
  EXPECT_THROW(core_location(bad, 0), Error);
}

TEST(DeepNode, DistanceOrderingWithComplexes) {
  const Machine m(deep_shape(), build_single_switch_network(2));
  const DistanceMatrix d = extract_distances(m);
  const float same_complex = d.at(0, 1);
  const float cross_complex = d.at(0, 4);
  const float cross_socket = d.at(0, 16);
  const float inter_node = d.at(0, 32);
  EXPECT_LT(same_complex, cross_complex);
  EXPECT_LT(cross_complex, cross_socket);
  EXPECT_LT(cross_socket, inter_node);
}

TEST(DeepNode, MachineComplexAccessor) {
  const Machine m(deep_shape(), build_single_switch_network(1));
  EXPECT_EQ(m.complex_of_core(0), 0);
  EXPECT_EQ(m.complex_of_core(5), 1);
  EXPECT_EQ(m.complex_of_core(17), 0);
  const Machine flat = Machine::gpc(1);
  EXPECT_EQ(flat.complex_of_core(3), 0);
}

TEST(DeepNode, BgmhPacksHeavyEdgesIntoComplexes) {
  // The paper's future-work question: do the binomial heuristics pay off on
  // nodes with more cores?  With 32 cores per node, BGMH must place the
  // root's heaviest child (rank 16) in rank 0's complex.
  const Machine m(deep_shape(), build_single_switch_network(1));
  const DistanceMatrix d = extract_intranode_distances(m);
  std::vector<int> initial(32);
  for (int i = 0; i < 32; ++i) initial[i] = (i % 2) * 16 + i / 2;  // scatter
  Rng rng(3);
  mapping::BgmhMapper mapper;
  const auto result = mapper.map(initial, d, rng);
  EXPECT_EQ(core_location(m.shape(), result[16]).complex_in_socket,
            core_location(m.shape(), result[0]).complex_in_socket);
  EXPECT_EQ(core_location(m.shape(), result[16]).socket,
            core_location(m.shape(), result[0]).socket);
  // And the mapping improves the weighted gather cost of the scatter input.
  const auto g =
      mapping::build_pattern_graph(mapping::Pattern::BinomialGather, 32);
  EXPECT_LT(mapping::mapping_cost(g, result, d),
            mapping::mapping_cost(g, initial, d));
}

TEST(DistanceIo, SaveLoadRoundtrip) {
  const Machine m = Machine::gpc(4);
  const DistanceMatrix d = extract_distances(m);
  const std::string path = ::testing::TempDir() + "/tarr_dist.bin";
  d.save(path);
  const DistanceMatrix loaded = DistanceMatrix::load(path);
  ASSERT_EQ(loaded.size(), d.size());
  for (CoreId a = 0; a < d.size(); a += 3)
    for (CoreId b = 0; b < d.size(); b += 5)
      EXPECT_EQ(loaded.at(a, b), d.at(a, b));
  std::remove(path.c_str());
}

TEST(DistanceIo, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/tarr_garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a matrix", f);
    std::fclose(f);
  }
  EXPECT_THROW(DistanceMatrix::load(path), Error);
  EXPECT_THROW(DistanceMatrix::load("/nonexistent/dir/x.bin"), Error);
  std::remove(path.c_str());
}

TEST(DistanceIo, LoadRejectsTruncated) {
  const Machine m = Machine::gpc(2);
  const DistanceMatrix d = extract_distances(m);
  const std::string path = ::testing::TempDir() + "/tarr_trunc.bin";
  d.save(path);
  // Truncate the payload.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), 64), 0);
  }
  EXPECT_THROW(DistanceMatrix::load(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tarr::topology
