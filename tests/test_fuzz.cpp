// Randomized property tests: arbitrary (seeded) permutations, machines and
// schedules must uphold the same invariants the structured tests check.

#include <gtest/gtest.h>

#include <algorithm>

#include "check/audit_engine.hpp"
#include "collectives/allgather.hpp"
#include "collectives/orderfix.hpp"
#include "common/permutation.hpp"
#include "common/rng.hpp"
#include "fault/degraded.hpp"
#include "fault/fault_mask.hpp"
#include "fault/shrink.hpp"
#include "mapping/heuristics.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"
#include "topology/distance.hpp"
#include "topology/fattree.hpp"

namespace tarr {
namespace {

using collectives::AllgatherAlgo;
using collectives::AllgatherOptions;
using collectives::OrderFix;
using simmpi::Communicator;
using simmpi::Engine;
using simmpi::ExecMode;
using topology::Machine;

std::vector<int> random_permutation(int n, Rng& rng) {
  std::vector<int> p = identity_permutation(n);
  for (int i = n - 1; i > 0; --i) std::swap(p[i], p[rng.next_below(i + 1)]);
  return p;
}

/// Reordered communicator from an arbitrary rank permutation (not from a
/// heuristic): new rank j sits on the core of old rank perm[j].
Communicator arbitrary_reorder(const Communicator& comm,
                               const std::vector<int>& oldrank) {
  std::vector<CoreId> cores(comm.size());
  for (Rank j = 0; j < comm.size(); ++j) cores[j] = comm.core_of(oldrank[j]);
  return comm.reordered(cores);
}

class FuzzSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeeds, AllgatherCorrectUnderArbitraryPermutations) {
  Rng rng(1000 + GetParam());
  const int nodes = 1 + static_cast<int>(rng.next_below(6));
  const Machine m = Machine::gpc(nodes);
  // Power-of-two p for RD; ring/bruck get arbitrary sizes below.
  const int p = std::min<int>(topology::Machine::gpc(nodes).total_cores(),
                              1 << (2 + rng.next_below(4)));
  const auto spec =
      simmpi::all_layouts()[rng.next_below(4)];
  const Communicator comm(m, simmpi::make_layout(m, p, spec));
  const auto oldrank = random_permutation(p, rng);
  const Communicator reordered = arbitrary_reorder(comm, oldrank);

  for (OrderFix fix : {OrderFix::InitComm, OrderFix::EndShuffle}) {
    Engine eng(reordered, simmpi::CostConfig{}, ExecMode::Data, 32, p);
    collectives::run_allgather(
        eng, AllgatherOptions{AllgatherAlgo::RecursiveDoubling, fix},
        oldrank);
    collectives::check_allgather_output(eng);
  }
}

TEST_P(FuzzSeeds, RingAndBruckSelfCorrectAnySizeAnyPermutation) {
  Rng rng(2000 + GetParam());
  const int nodes = 1 + static_cast<int>(rng.next_below(5));
  const Machine m = Machine::gpc(nodes);
  const int p = 2 + static_cast<int>(rng.next_below(m.total_cores() - 1));
  const Communicator comm(
      m, simmpi::make_layout(m, p, simmpi::all_layouts()[GetParam() % 4]));
  const auto oldrank = random_permutation(p, rng);
  const Communicator reordered = arbitrary_reorder(comm, oldrank);

  for (AllgatherAlgo algo : {AllgatherAlgo::Ring, AllgatherAlgo::Bruck}) {
    Engine eng(reordered, simmpi::CostConfig{}, ExecMode::Data, 16, p);
    collectives::run_allgather(eng, AllgatherOptions{algo, OrderFix::None},
                               oldrank);
    collectives::check_allgather_output(eng);
  }
}

TEST_P(FuzzSeeds, TimedEqualsDataOnRandomSchedules) {
  // The two execution modes must account exactly the same time for any
  // stage/copy sequence.
  Rng rng(3000 + GetParam());
  const Machine m = Machine::gpc(1 + rng.next_below(4));
  const int p = 2 + static_cast<int>(rng.next_below(m.total_cores() - 1));
  const Communicator comm(m, simmpi::make_layout(m, p, {}));
  const int blocks = 4;

  struct Copy {
    Rank src, dst;
    int soff, doff, n;
  };
  std::vector<std::vector<Copy>> stages(1 + rng.next_below(6));
  for (auto& stage : stages) {
    // Keep the schedule well-formed: within a stage no destination block may
    // be written twice (the engine's schedule verifier rejects such
    // non-deterministic stages), so drop candidates that collide.
    std::vector<char> written(static_cast<std::size_t>(p) * blocks, 0);
    const int k = 1 + static_cast<int>(rng.next_below(12));
    for (int i = 0; i < k; ++i) {
      Copy c;
      c.src = static_cast<Rank>(rng.next_below(p));
      c.dst = static_cast<Rank>(rng.next_below(p));
      c.n = 1 + static_cast<int>(rng.next_below(blocks));
      c.soff = static_cast<int>(rng.next_below(blocks - c.n + 1));
      c.doff = static_cast<int>(rng.next_below(blocks - c.n + 1));
      const std::size_t base =
          static_cast<std::size_t>(c.dst) * blocks + c.doff;
      bool clashes = false;
      for (int b = 0; b < c.n; ++b) clashes |= written[base + b] != 0;
      if (clashes) continue;
      for (int b = 0; b < c.n; ++b) written[base + b] = 1;
      stage.push_back(c);
    }
  }

  auto run = [&](ExecMode mode) {
    Engine eng(comm, simmpi::CostConfig{}, mode, 777, blocks);
    for (const auto& stage : stages) {
      eng.begin_stage();
      for (const auto& c : stage) eng.copy(c.src, c.soff, c.dst, c.doff, c.n);
      eng.end_stage();
    }
    return eng.total();
  };
  const Usec t_timed = run(ExecMode::Timed);
  const Usec t_data = run(ExecMode::Data);
  EXPECT_NEAR(t_timed, t_data, 1e-9 * std::max(1.0, t_data));
}

TEST_P(FuzzSeeds, HeuristicsValidOnRandomCoreSubsets) {
  // Communicators over arbitrary core subsets (not whole nodes) are legal
  // inputs; heuristics must still emit permutations with rank 0 fixed.
  Rng rng(4000 + GetParam());
  const Machine m = Machine::gpc(2 + rng.next_below(6));
  const auto d = topology::extract_distances(m);
  // Choose a random subset of cores.
  std::vector<int> cores = random_permutation(m.total_cores(), rng);
  const int p = 2 + static_cast<int>(rng.next_below(
                        std::min(30, m.total_cores() - 2)));
  cores.resize(p);
  std::vector<int> initial = cores;

  for (auto pattern : {mapping::Pattern::Ring,
                       mapping::Pattern::BinomialBcast,
                       mapping::Pattern::BinomialGather,
                       mapping::Pattern::Bruck}) {
    Rng r2(rng.next_u64());
    const auto mapper = mapping::make_heuristic(pattern);
    const auto result = mapper->map(initial, d, r2);
    auto a = initial;
    auto b = result;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << mapper->name();
    EXPECT_EQ(result[0], initial[0]);
  }
}

TEST_P(FuzzSeeds, ShrunkenAllgatherSurvivesRandomFaultMasks) {
  // Random component failures (links, nodes, or both) either partition the
  // fabric — reported structurally — or leave a survivor set over which a
  // Data-mode ring allgather still satisfies the shrunken audit contract.
  // Under TARR_SLOW_CHECKS the engine's StageVerifier additionally shadows
  // every stage of the degraded schedule.
  Rng rng(5000 + GetParam());
  const int nodes = 4 + static_cast<int>(rng.next_below(8));
  const Machine m(topology::NodeShape{.sockets = 1, .cores_per_socket = 2},
                  topology::build_two_level_fattree(nodes, 2, 2));
  const topology::SwitchGraph& g = m.network();

  fault::FaultMask mask;
  const int dead_nodes = static_cast<int>(rng.next_below(nodes - 1));
  const fault::FaultMask node_draw =
      fault::FaultMask::random_nodes(g, dead_nodes, rng);
  for (const NodeId n : node_draw.failed_nodes()) mask.fail_node(n);
  const int cut_links = static_cast<int>(rng.next_below(4));
  const fault::FaultMask link_draw =
      fault::FaultMask::random_links(g, cut_links, rng, true);
  for (const LinkId l : link_draw.failed_links()) mask.fail_link(l);

  const fault::DegradedTopology topo(m, std::move(mask));
  const Communicator parent(
      m, simmpi::make_layout(m, m.total_cores(), {}));
  try {
    const fault::ShrunkComm shrunk = fault::shrink_communicator(topo, parent);
    const int s = shrunk.comm.size();
    Engine eng(shrunk.comm, simmpi::CostConfig{}, ExecMode::Data, s, s);
    collectives::run_allgather(
        eng, AllgatherOptions{AllgatherAlgo::Ring, OrderFix::None},
        identity_permutation(s));
    check::audit_shrunken_allgather(eng, parent.size(), shrunk.parent_rank);
  } catch (const topology::PartitionedError& e) {
    EXPECT_GE(e.info().components.size(), 2u);
  }
}

TEST_P(FuzzSeeds, TransientFaultsKeepTimedDataParityOnRandomSchedules) {
  // Same random-schedule parity property as above, but with the transient
  // fault model armed: both modes draw the identical attempt sequences, so
  // totals must still match exactly.
  Rng rng(6000 + GetParam());
  const Machine m = Machine::gpc(1 + rng.next_below(3));
  const int p =
      2 + static_cast<int>(rng.next_below(std::min(12, m.total_cores() - 1)));
  const Communicator comm(m, simmpi::make_layout(m, p, {}));
  const int blocks = 3;

  struct Copy {
    Rank src, dst;
    int off, n;
  };
  std::vector<std::vector<Copy>> stages(1 + rng.next_below(5));
  for (auto& stage : stages) {
    std::vector<char> written(static_cast<std::size_t>(p) * blocks, 0);
    const int k = 1 + static_cast<int>(rng.next_below(8));
    for (int i = 0; i < k; ++i) {
      Copy c;
      c.src = static_cast<Rank>(rng.next_below(p));
      c.dst = static_cast<Rank>(rng.next_below(p));
      c.n = 1 + static_cast<int>(rng.next_below(blocks));
      c.off = static_cast<int>(rng.next_below(blocks - c.n + 1));
      const std::size_t base = static_cast<std::size_t>(c.dst) * blocks + c.off;
      bool clashes = false;
      for (int b = 0; b < c.n; ++b) clashes |= written[base + b] != 0;
      if (clashes) continue;
      for (int b = 0; b < c.n; ++b) written[base + b] = 1;
      stage.push_back(c);
    }
  }

  simmpi::TransientFaultConfig faults;
  faults.drop_prob = 0.15;
  faults.corrupt_prob = 0.1;
  faults.seed = 42 + GetParam();
  auto run = [&](ExecMode mode) {
    Engine eng(comm, simmpi::CostConfig{}, mode, 321, blocks);
    eng.set_transient_faults(faults);
    for (const auto& stage : stages) {
      eng.begin_stage();
      for (const auto& c : stage) eng.copy(c.src, c.off, c.dst, c.off, c.n);
      eng.end_stage();
    }
    return eng.total();
  };
  EXPECT_EQ(run(ExecMode::Timed), run(ExecMode::Data));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(0, 24));

}  // namespace
}  // namespace tarr
