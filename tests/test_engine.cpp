#include "simmpi/engine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "simmpi/layout.hpp"

namespace tarr::simmpi {
namespace {

using topology::Machine;

Engine make_engine(const Communicator& c, ExecMode mode, Bytes block = 64,
                   int blocks = 8) {
  return Engine(c, CostConfig{}, mode, block, blocks);
}

TEST(Engine, SetAndReadBlocks) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 4, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Data);
  e.set_block(2, 3, 77u);
  EXPECT_EQ(e.block(2, 3), 77u);
  EXPECT_EQ(e.block(0, 0), kEmptyTag);
}

TEST(Engine, CopyMovesTags) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 4, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Data);
  e.set_block(0, 0, 5u);
  e.set_block(0, 1, 6u);
  e.begin_stage();
  e.copy(0, 0, 1, 2, 2);
  e.end_stage();
  EXPECT_EQ(e.block(1, 2), 5u);
  EXPECT_EQ(e.block(1, 3), 6u);
}

TEST(Engine, SimultaneousExchangeReadsPreStageState) {
  // Both directions of an exchange must see the pre-stage values.
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 2, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Data);
  e.set_block(0, 0, 100u);
  e.set_block(1, 0, 200u);
  e.begin_stage();
  e.copy(0, 0, 1, 1, 1);
  e.copy(1, 0, 0, 1, 1);
  e.end_stage();
  EXPECT_EQ(e.block(1, 1), 100u);
  EXPECT_EQ(e.block(0, 1), 200u);
}

TEST(Engine, OverlappingLocalRotationWithinStage) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 1, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Data, 64, 4);
  for (int b = 0; b < 4; ++b) e.set_block(0, b, 10u + b);
  // Rotate by one using simultaneous per-block copies.
  e.begin_stage();
  for (int b = 0; b < 4; ++b) e.copy(0, b, 0, (b + 1) % 4, 1);
  e.end_stage();
  for (int b = 0; b < 4; ++b) EXPECT_EQ(e.block(0, (b + 1) % 4), 10u + b);
}

TEST(Engine, CombineXorsTags) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 2, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Data);
  e.set_block(0, 0, 0b1100u);
  e.set_block(1, 0, 0b1010u);
  e.begin_stage();
  e.combine(0, 0, 1, 0, 1);
  e.combine(1, 0, 0, 0, 1);
  e.end_stage();
  EXPECT_EQ(e.block(0, 0), 0b0110u);
  EXPECT_EQ(e.block(1, 0), 0b0110u);
}

TEST(Engine, TimeAccumulatesAcrossStages) {
  const Machine m = Machine::gpc(2);
  const Communicator c(m, make_layout(m, 16, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Timed);
  e.begin_stage();
  e.copy(0, 0, 8, 0, 1);
  const Usec s1 = e.end_stage();
  EXPECT_GT(s1, 0.0);
  e.begin_stage();
  e.copy(0, 0, 1, 0, 1);
  const Usec s2 = e.end_stage();
  EXPECT_DOUBLE_EQ(e.total(), s1 + s2);
}

TEST(Engine, StageCostIsMaxOfTransfers) {
  const Machine m = Machine::gpc(2);
  const Communicator c(m, make_layout(m, 16, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Timed);
  e.begin_stage();
  e.copy(0, 0, 1, 0, 1);  // fast shm
  e.end_stage();
  const Usec shm_only = e.total();

  Engine e2 = make_engine(c, ExecMode::Timed);
  e2.begin_stage();
  e2.copy(0, 0, 1, 0, 1);
  e2.copy(2, 0, 10, 0, 1);  // slower network transfer dominates
  e2.end_stage();
  EXPECT_GT(e2.total(), shm_only);
}

TEST(Engine, RepeatLastStage) {
  const Machine m = Machine::gpc(2);
  const Communicator c(m, make_layout(m, 16, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Timed);
  e.begin_stage();
  e.copy(0, 0, 8, 0, 1);
  const Usec s = e.end_stage();
  e.repeat_last_stage(3);
  EXPECT_DOUBLE_EQ(e.total(), 4.0 * s);
}

TEST(Engine, RepeatOnlyInTimedMode) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 2, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Data);
  e.begin_stage();
  e.copy(0, 0, 1, 0, 1);
  e.end_stage();
  EXPECT_THROW(e.repeat_last_stage(1), Error);
}

TEST(Engine, LocalPermuteAllMovesEveryBuffer) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 2, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Data, 64, 3);
  for (Rank r = 0; r < 2; ++r)
    for (int b = 0; b < 3; ++b) e.set_block(r, b, r * 10 + b);
  e.local_permute_all({2, 0, 1});  // block b -> position dst[b]
  for (Rank r = 0; r < 2; ++r) {
    EXPECT_EQ(e.block(r, 2), r * 10 + 0u);
    EXPECT_EQ(e.block(r, 0), r * 10 + 1u);
    EXPECT_EQ(e.block(r, 1), r * 10 + 2u);
  }
}

TEST(Engine, LocalPermuteChargesOnlyMovedBlocks) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 2, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Timed, 64, 4);
  e.local_permute_all({0, 1, 2, 3});  // identity: free
  EXPECT_DOUBLE_EQ(e.total(), 0.0);
  e.local_permute_all({1, 0, 2, 3});  // two blocks move
  EXPECT_GT(e.total(), 0.0);
}

TEST(Engine, LocalPermuteRejectsNonPermutation) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 2, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Timed, 64, 2);
  EXPECT_THROW(e.local_permute_all({0, 0}), Error);
  EXPECT_THROW(e.local_permute_all({0}), Error);
}

TEST(Engine, BoundsChecks) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 2, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Data, 64, 4);
  EXPECT_THROW(e.copy(0, 0, 1, 0, 1), Error);  // no stage open
  e.begin_stage();
  EXPECT_THROW(e.copy(0, 3, 1, 0, 2), Error);  // src overflow
  EXPECT_THROW(e.copy(0, 0, 1, 4, 1), Error);  // dst overflow
  EXPECT_THROW(e.copy(0, 0, 2, 0, 1), Error);  // bad rank
  EXPECT_THROW(e.copy(0, 0, 1, 0, 0), Error);  // zero blocks
  e.copy(0, 0, 1, 0, 1);  // keep the stage non-empty for slow-check builds
  e.end_stage();
  EXPECT_THROW(e.block(0, 9), Error);
}

TEST(Engine, TimedModeRejectsBlockReads) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 2, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Timed);
  e.set_block(0, 0, 1u);  // silently ignored
  EXPECT_THROW(e.block(0, 0), Error);
}

TEST(Engine, AddTime) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, make_layout(m, 2, LayoutSpec{}));
  Engine e = make_engine(c, ExecMode::Timed);
  e.add_time(123.5);
  EXPECT_DOUBLE_EQ(e.total(), 123.5);
}

}  // namespace
}  // namespace tarr::simmpi
