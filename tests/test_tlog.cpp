// tarr::tlog: the bounded-memory streaming binary trace log.  The load-
// bearing contracts, in order: a `.tlog` round-trip rebuilds the
// ScheduleRecord byte-identically to live recording (EXPECT_EQ on every
// field, bit-exact total); replay into a Tracer reproduces its timeline
// JSON and metrics CSV byte-for-byte; filtering and 1-in-N sampling drop
// exactly what they claim and bookkeep every dropped event; the footer
// index lets a reader skip whole blocks; corrupt input of any shape throws
// a structured tarr::Error instead of crashing; and writer memory stays
// O(block), not O(events) — asserted with the tarr::prof counting
// allocator (this binary links tarr_prof_memhook, like test_prof).

#include "tlog/reader.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "collectives/allgather.hpp"
#include "collectives/hierarchical.hpp"
#include "common/permutation.hpp"
#include "prof/prof.hpp"
#include "report/record.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"
#include "simmpi/transient.hpp"
#include "tlog/writer.hpp"
#include "trace/tracer.hpp"

namespace tarr::tlog {
namespace {

using simmpi::Communicator;
using simmpi::CostConfig;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::make_layout;
using topology::Machine;

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "tarr_tlog_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.good()) << path;
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
}

/// The schedule shapes the acceptance criteria call out.  Each runner
/// drives one engine run against `sink` and returns Engine::total().
struct Scenario {
  const char* name;
  Usec (*run)(trace::TraceSink* sink);
};

Usec run_ring(trace::TraceSink* sink) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, 16);
  if (sink) eng.set_trace_sink(sink);
  collectives::run_allgather(
      eng, {collectives::AllgatherAlgo::Ring, collectives::OrderFix::None},
      identity_permutation(16));
  return eng.total();
}

Usec run_rd_shuffled(trace::TraceSink* sink) {
  // EndShuffle adds a PermuteEvent + "local-shuffle" TimeEvent, covering
  // the out-of-stage record kinds.
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  std::vector<Rank> rotated(16);
  for (int i = 0; i < 16; ++i) rotated[i] = (i + 1) % 16;
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, 16);
  if (sink) eng.set_trace_sink(sink);
  collectives::run_allgather(eng,
                             {collectives::AllgatherAlgo::RecursiveDoubling,
                              collectives::OrderFix::EndShuffle},
                             rotated);
  return eng.total();
}

Usec run_hierarchical(trace::TraceSink* sink) {
  const Machine m = Machine::gpc(4);
  const int p = m.total_cores();
  const Communicator comm(m, make_layout(m, p, {}));
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, p);
  if (sink) eng.set_trace_sink(sink);
  collectives::HierAllgatherOptions opts{collectives::AllgatherAlgo::Ring,
                                         collectives::IntraAlgo::Binomial,
                                         collectives::OrderFix::None};
  collectives::run_hier_allgather(eng, opts, identity_permutation(p));
  return eng.total();
}

Usec run_transient_faults(trace::TraceSink* sink) {
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  simmpi::TransientFaultConfig faults;
  faults.drop_prob = 0.2;
  faults.seed = 5;
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, 16);
  eng.set_transient_faults(faults);
  if (sink) eng.set_trace_sink(sink);
  collectives::run_allgather(
      eng,
      {collectives::AllgatherAlgo::RecursiveDoubling,
       collectives::OrderFix::None},
      identity_permutation(16));
  return eng.total();
}

const Scenario kScenarios[] = {
    {"ring", run_ring},
    {"rd_shuffled", run_rd_shuffled},
    {"hierarchical", run_hierarchical},
    {"transient", run_transient_faults},
};

/// Record `scenario` twice — once live into a ScheduleRecorder, once
/// through a TlogSink — and return (live record, tlog path).
std::pair<report::ScheduleRecord, std::string> record_both(
    const Scenario& scenario, TlogOptions opts = TlogOptions{}) {
  report::ScheduleRecorder recorder;
  const Usec live_total = scenario.run(&recorder);
  const std::string path = tmp_path(std::string(scenario.name) + ".tlog");
  {
    TlogSink sink(path, opts);
    const Usec tlog_total = scenario.run(&sink);
    sink.finish();
    EXPECT_EQ(live_total, tlog_total);  // sinks never perturb pricing
  }
  report::ScheduleRecord rec = recorder.take();
  EXPECT_EQ(rec.total, live_total);
  return {std::move(rec), path};
}

void expect_records_identical(const report::ScheduleRecord& a,
                              const report::ScheduleRecord& b) {
  // Bit-exact everywhere: EXPECT_EQ on every field including doubles.
  ASSERT_EQ(a.transfers.size(), b.transfers.size());
  for (std::size_t i = 0; i < a.transfers.size(); ++i) {
    const auto& x = a.transfers[i];
    const auto& y = b.transfers[i];
    EXPECT_EQ(x.stage, y.stage);
    EXPECT_EQ(x.src, y.src);
    EXPECT_EQ(x.dst, y.dst);
    EXPECT_EQ(x.src_core, y.src_core);
    EXPECT_EQ(x.dst_core, y.dst_core);
    EXPECT_EQ(x.bytes, y.bytes);
    EXPECT_EQ(x.channel, y.channel);
    EXPECT_EQ(x.contention, y.contention);
    EXPECT_EQ(x.attempts, y.attempts);
    EXPECT_EQ(x.duration, y.duration);
    EXPECT_EQ(x.uncontended, y.uncontended);
  }
  ASSERT_EQ(a.copies.size(), b.copies.size());
  for (std::size_t i = 0; i < a.copies.size(); ++i) {
    const auto& x = a.copies[i];
    const auto& y = b.copies[i];
    EXPECT_EQ(x.stage, y.stage);
    EXPECT_EQ(x.src, y.src);
    EXPECT_EQ(x.dst, y.dst);
    EXPECT_EQ(x.src_off, y.src_off);
    EXPECT_EQ(x.dst_off, y.dst_off);
    EXPECT_EQ(x.nblocks, y.nblocks);
    EXPECT_EQ(x.bytes, y.bytes);
    EXPECT_EQ(x.combining, y.combining);
  }
  ASSERT_EQ(a.loads.size(), b.loads.size());
  for (std::size_t i = 0; i < a.loads.size(); ++i) {
    EXPECT_EQ(a.loads[i].qpi, b.loads[i].qpi);
    EXPECT_EQ(a.loads[i].id, b.loads[i].id);
    EXPECT_EQ(a.loads[i].dir, b.loads[i].dir);
    EXPECT_EQ(a.loads[i].bytes, b.loads[i].bytes);
  }
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    const auto& x = a.stages[i];
    const auto& y = b.stages[i];
    EXPECT_EQ(x.stage, y.stage);
    EXPECT_EQ(x.repeats, y.repeats);
    EXPECT_EQ(x.start, y.start);
    EXPECT_EQ(x.duration, y.duration);
    EXPECT_EQ(x.retry_wait, y.retry_wait);
    EXPECT_EQ(x.first_transfer, y.first_transfer);
    EXPECT_EQ(x.num_transfers, y.num_transfers);
    EXPECT_EQ(x.first_copy, y.first_copy);
    EXPECT_EQ(x.num_copies, y.num_copies);
    EXPECT_EQ(x.first_load, y.first_load);
    EXPECT_EQ(x.num_loads, y.num_loads);
  }
  ASSERT_EQ(a.extras.size(), b.extras.size());
  for (std::size_t i = 0; i < a.extras.size(); ++i) {
    EXPECT_EQ(a.extras[i].what, b.extras[i].what);
    EXPECT_EQ(a.extras[i].start, b.extras[i].start);
    EXPECT_EQ(a.extras[i].duration, b.extras[i].duration);
    EXPECT_EQ(a.extras[i].dst_of_block, b.extras[i].dst_of_block);
  }
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].index, b.events[i].index);
  }
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].name, b.phases[i].name);
    EXPECT_EQ(a.phases[i].start, b.phases[i].start);
    EXPECT_EQ(a.phases[i].duration, b.phases[i].duration);
  }
  EXPECT_EQ(a.link_bytes, b.link_bytes);
  EXPECT_EQ(a.qpi_bytes, b.qpi_bytes);
  EXPECT_EQ(a.total, b.total);  // bit-exact, the report invariant
}

// ---------------------------------------------------------------------------
// Round-trip exactness.

TEST(Roundtrip, RebuildsScheduleRecordByteIdentically) {
  for (const Scenario& scenario : kScenarios) {
    SCOPED_TRACE(scenario.name);
    const auto [live, path] = record_both(scenario);
    const report::ScheduleRecord replayed = read_record(path);
    expect_records_identical(live, replayed);
  }
}

TEST(Roundtrip, SmallBlocksForceFlushesAndStillRoundTrip) {
  // A 512-byte block turns one run into many blocks, exercising the
  // delta-context resets at every boundary.
  TlogOptions opts;
  opts.block_bytes = 512;
  const auto [live, path] = record_both(kScenarios[2], opts);
  const FileInfo info = read_info(path);
  EXPECT_GT(info.blocks.size(), 4u);
  expect_records_identical(live, read_record(path));
}

TEST(Roundtrip, RepeatCompressedSliceSharingSurvives) {
  // The ring in Timed mode repeat-compresses its identical stages: the
  // repeats > 1 entries share the transfer/copy/load slices of the stage
  // they repeat.  Rebuilding from a .tlog must reproduce exactly that
  // aliasing — same slice indices, no duplicated rows.
  const auto [live, path] = record_both(kScenarios[0]);
  bool saw_repeat = false;
  for (const auto& s : live.stages) saw_repeat |= s.repeats > 1;
  ASSERT_TRUE(saw_repeat) << "scenario no longer repeat-compresses";
  const report::ScheduleRecord replayed = read_record(path);
  for (std::size_t i = 0; i < live.stages.size(); ++i) {
    if (live.stages[i].repeats <= 1) continue;
    const auto& x = live.stages[i];
    const auto& y = replayed.stages[i];
    // The compressed entry references an earlier stage's slices.
    EXPECT_EQ(x.first_transfer, y.first_transfer);
    EXPECT_EQ(x.num_transfers, y.num_transfers);
    bool aliases = false;
    for (std::size_t j = 0; j < i; ++j)
      aliases |= replayed.stages[j].first_transfer == y.first_transfer &&
                 replayed.stages[j].repeats == 1;
    EXPECT_TRUE(aliases) << "stage " << i << " does not share a slice";
  }
  EXPECT_EQ(live.transfers.size(), replayed.transfers.size());
}

TEST(Roundtrip, TracerReplayReproducesTimelineAndMetrics) {
  // Count/Observe capture makes the .tlog a lossless TraceSink stream, so
  // a replayed Tracer must emit byte-identical JSON and CSV.
  trace::Tracer live;
  const std::string path = tmp_path("tracer.tlog");
  {
    TlogSink sink(path);
    trace::TeeSink tee(&live, &sink);
    run_hierarchical(&tee);
    sink.finish();
  }
  trace::Tracer replayed;
  replay(path, replayed);
  EXPECT_EQ(live.timeline_json(), replayed.timeline_json());
  EXPECT_EQ(live.metrics().csv(), replayed.metrics().csv());
}

TEST(Roundtrip, SameRunWritesByteIdenticalFiles) {
  const std::string p1 = tmp_path("det1.tlog");
  const std::string p2 = tmp_path("det2.tlog");
  for (const std::string& p : {p1, p2}) {
    TlogSink sink(p);
    run_ring(&sink);
    sink.finish();
  }
  EXPECT_EQ(slurp(p1), slurp(p2));
}

// ---------------------------------------------------------------------------
// Filtering and sampling: exact admission, exact bookkeeping.

TEST(Filter, WriterKindFilterDropsAndBookkeeps) {
  TlogOptions opts;
  opts.filter.kinds = 1u << static_cast<int>(EventKind::Stage);
  const std::string path = tmp_path("kindfilter.tlog");
  TlogSink sink(path, opts);
  run_ring(&sink);
  sink.finish();
  const WriteTotals& t = sink.totals();
  const int stage = static_cast<int>(EventKind::Stage);
  const int transfer = static_cast<int>(EventKind::Transfer);
  EXPECT_GT(t.received[stage], 0);
  EXPECT_EQ(t.filtered[stage], 0);
  EXPECT_EQ(t.stored[stage], t.received[stage]);
  EXPECT_GT(t.received[transfer], 0);
  EXPECT_EQ(t.filtered[transfer], t.received[transfer]);
  EXPECT_EQ(t.stored[transfer], 0);
  // The identity received = filtered + sampled_out + stored, per kind.
  for (int k = 0; k < kNumEventKinds; ++k)
    EXPECT_EQ(t.received[k], t.filtered[k] + t.sampled_out[k] + t.stored[k])
        << to_string(static_cast<EventKind>(k));
  // And the footer serialized the same numbers.
  const FileInfo info = read_info(path);
  EXPECT_EQ(info.received, t.received);
  EXPECT_EQ(info.filtered, t.filtered);
  EXPECT_EQ(info.sampled_out, t.sampled_out);
  EXPECT_EQ(info.stored, t.stored);
}

TEST(Filter, StageWindowKeepsExactlyTheWindow) {
  TlogOptions opts;
  opts.filter.min_stage = 2;
  opts.filter.max_stage = 4;
  const std::string path = tmp_path("stagewin.tlog");
  {
    TlogSink sink(path, opts);
    run_rd_shuffled(&sink);
    sink.finish();
  }
  report::ScheduleRecorder recorder;
  replay(path, recorder);
  const report::ScheduleRecord rec = recorder.take();
  for (const auto& s : rec.stages) {
    EXPECT_GE(s.stage, 2);
    EXPECT_LE(s.stage, 4);
  }
  for (const auto& t : rec.transfers) {
    EXPECT_GE(t.stage, 2);
    EXPECT_LE(t.stage, 4);
  }
  EXPECT_FALSE(rec.stages.empty());
  // Stage-less kinds (phases, counters, ...) pass a stage window untouched.
  const FileInfo info = read_info(path);
  const int counter = static_cast<int>(EventKind::Counter);
  EXPECT_EQ(info.filtered[counter], 0);
}

TEST(Filter, RankWindowMatchesEitherEndpoint) {
  TlogOptions opts;
  opts.filter.min_rank = 0;
  opts.filter.max_rank = 3;
  const std::string path = tmp_path("rankwin.tlog");
  {
    TlogSink sink(path, opts);
    run_ring(&sink);
    sink.finish();
  }
  report::ScheduleRecorder recorder;
  replay(path, recorder);
  const report::ScheduleRecord rec = recorder.take();
  ASSERT_FALSE(rec.transfers.empty());
  for (const auto& t : rec.transfers)
    EXPECT_TRUE((t.src >= 0 && t.src <= 3) || (t.dst >= 0 && t.dst <= 3))
        << t.src << " -> " << t.dst;
}

TEST(Filter, ReaderSideFilterSelectsWithoutRewriting) {
  // Write unfiltered once, then narrow at read time.
  const auto [live, path] = record_both(kScenarios[1]);
  ReplayOptions ropts;
  ropts.filter.kinds = 1u << static_cast<int>(EventKind::Transfer);
  report::ScheduleRecorder recorder;
  const ReplayStats stats = replay(path, recorder, ropts);
  EXPECT_EQ(stats.delivered[static_cast<int>(EventKind::Transfer)],
            static_cast<long long>(live.transfers.size()));
  EXPECT_EQ(stats.delivered[static_cast<int>(EventKind::Stage)], 0);
  EXPECT_EQ(stats.delivered_events(),
            stats.delivered[static_cast<int>(EventKind::Transfer)]);
}

TEST(Sampling, OneInNKeepsEveryNthFromTheFirst) {
  TlogOptions opts;
  opts.sample_every = 3;
  const std::string path = tmp_path("sampled.tlog");
  TlogSink sink(path, opts);
  run_ring(&sink);
  sink.finish();
  const WriteTotals& t = sink.totals();
  for (const EventKind k :
       {EventKind::Transfer, EventKind::Copy, EventKind::Counter}) {
    const int i = static_cast<int>(k);
    if (t.received[i] == 0) continue;
    // Exact arithmetic: kept = ceil(received / 3) (the first is kept).
    EXPECT_EQ(t.stored[i], (t.received[i] + 2) / 3) << to_string(k);
    EXPECT_EQ(t.sampled_out[i], t.received[i] - t.stored[i]);
  }
  // Sampling never touches the structural kinds.
  const int stage = static_cast<int>(EventKind::Stage);
  EXPECT_EQ(t.sampled_out[stage], 0);
  EXPECT_EQ(t.stored[stage], t.received[stage]);
  // The footer agrees and advertises the sampling rate.
  const FileInfo info = read_info(path);
  EXPECT_EQ(info.sample_every, 3);
  EXPECT_EQ(info.sampled_out, t.sampled_out);
}

// ---------------------------------------------------------------------------
// The footer index and selective decode.

TEST(Index, BlockEntriesDescribeTheFileExactly) {
  TlogOptions opts;
  opts.block_bytes = 512;
  const auto [live, path] = record_both(kScenarios[2], opts);
  const FileInfo info = read_info(path);
  ASSERT_GT(info.blocks.size(), 1u);
  long long events = 0;
  std::array<long long, kNumEventKinds> stored{};
  for (const BlockInfo& b : info.blocks) {
    events += b.events;
    for (int k = 0; k < kNumEventKinds; ++k) stored[k] += b.stored[k];
    if (b.has_stage()) EXPECT_LE(b.min_stage, b.max_stage);
  }
  EXPECT_EQ(events, info.stored_events());
  EXPECT_EQ(stored, info.stored);
  // Offsets are strictly increasing and in-bounds.
  for (std::size_t i = 1; i < info.blocks.size(); ++i)
    EXPECT_GT(info.blocks[i].offset, info.blocks[i - 1].offset);
  EXPECT_LT(info.blocks.back().offset + info.blocks.back().payload_len,
            info.file_bytes);
}

TEST(Index, KindMaskSkipsBlocksWithoutDecodingThem) {
  // Force many blocks, then ask only for wall spans (which this scenario
  // never emits through the engine): every block must be skipped.
  TlogOptions opts;
  opts.block_bytes = 512;
  const auto [live, path] = record_both(kScenarios[0], opts);
  (void)live;
  ReplayOptions ropts;
  ropts.filter.kinds = 1u << static_cast<int>(EventKind::WallSpan);
  trace::NullSink null_sink;
  const ReplayStats stats = replay(path, null_sink, ropts);
  EXPECT_GT(stats.blocks_total, 1);
  EXPECT_EQ(stats.blocks_decoded, 0);
  EXPECT_EQ(stats.blocks_skipped, stats.blocks_total);
  EXPECT_EQ(stats.delivered_events(), 0);
}

TEST(Index, StageWindowSkipsDisjointBlocks) {
  TlogOptions opts;
  opts.block_bytes = 512;
  const auto [live, path] = record_both(kScenarios[1], opts);
  (void)live;
  const FileInfo info = read_info(path);
  // Restrict to the very first stage: blocks whose stage range starts
  // later — and carries nothing stage-less — can be skipped outright.
  ReplayOptions ropts;
  ropts.filter.kinds = (1u << static_cast<int>(EventKind::Stage)) |
                       (1u << static_cast<int>(EventKind::Transfer)) |
                       (1u << static_cast<int>(EventKind::Copy));
  ropts.filter.max_stage = 0;
  trace::NullSink null_sink;
  const ReplayStats stats = replay(path, null_sink, ropts);
  EXPECT_EQ(stats.blocks_total, static_cast<long long>(info.blocks.size()));
  EXPECT_GT(stats.blocks_skipped, 0);
  EXPECT_LT(stats.blocks_decoded, stats.blocks_total);
  // The decode was still correct: only stage-0 events came out.
  report::ScheduleRecorder recorder;
  replay(path, recorder, ropts);
  const report::ScheduleRecord rec = recorder.take();
  for (const auto& s : rec.stages) EXPECT_EQ(s.stage, 0);
  EXPECT_FALSE(rec.stages.empty());
}

// ---------------------------------------------------------------------------
// Writer lifecycle.

TEST(Writer, RejectsBadOptionsAndUnwritablePaths) {
  TlogOptions tiny;
  tiny.block_bytes = 16;
  EXPECT_THROW(TlogSink(tmp_path("tiny.tlog"), tiny), Error);
  TlogOptions bad_sample;
  bad_sample.sample_every = 0;
  EXPECT_THROW(TlogSink(tmp_path("bad.tlog"), bad_sample), Error);
  EXPECT_THROW(TlogSink("/nonexistent-dir/x.tlog"), Error);
}

TEST(Writer, FinishIsIdempotentAndSealsTheFile) {
  const std::string path = tmp_path("sealed.tlog");
  TlogSink sink(path);
  run_ring(&sink);
  sink.finish();
  EXPECT_TRUE(sink.finished());
  sink.finish();  // idempotent
  EXPECT_THROW(sink.on_stage(trace::StageEvent{}), Error);
  EXPECT_THROW(sink.add_count("n", 1.0), Error);
}

TEST(Writer, EmptyRunStillProducesAReadableFile) {
  const std::string path = tmp_path("norun.tlog");
  {
    TlogSink sink(path);
    sink.finish();
  }
  const FileInfo info = read_info(path);
  EXPECT_EQ(info.stored_events(), 0);
  EXPECT_TRUE(info.blocks.empty());
  trace::NullSink null_sink;
  const ReplayStats stats = replay(path, null_sink);
  EXPECT_EQ(stats.delivered_events(), 0);
}

// ---------------------------------------------------------------------------
// Fuzz: malformed inputs must throw tarr::Error, never crash.  These run
// under the ASan/UBSan CI matrix like every other test.

TEST(Fuzz, EmptyAndGarbageFilesAreRejected) {
  const std::string path = tmp_path("fuzz_empty.tlog");
  spit(path, "");
  EXPECT_THROW(read_info(path), Error);
  spit(path, "not a tlog at all");
  EXPECT_THROW(read_info(path), Error);
  spit(path, std::string(64, '\0'));
  EXPECT_THROW(read_info(path), Error);
  EXPECT_THROW(read_info(tmp_path("does_not_exist.tlog")), Error);
}

TEST(Fuzz, EveryTruncationIsRejectedOrDecodesCleanly) {
  TlogOptions opts;
  opts.block_bytes = 512;
  const auto [live, path] = record_both(kScenarios[0], opts);
  (void)live;
  const std::string whole = slurp(path);
  ASSERT_GT(whole.size(), 64u);
  const std::string cut = tmp_path("fuzz_cut.tlog");
  // Sweep a prefix ladder (every length near the ends, strides within).
  for (std::size_t len = 0; len < whole.size(); len += 1 + len / 16) {
    spit(cut, whole.substr(0, len));
    try {
      trace::NullSink null_sink;
      replay(cut, null_sink);
      FAIL() << "truncation to " << len << " bytes was not detected";
    } catch (const Error&) {
      // expected: structured rejection
    }
  }
}

TEST(Fuzz, BitFlipsAreDetectedByChecksums) {
  const auto [live, path] = record_both(kScenarios[0]);
  (void)live;
  const std::string whole = slurp(path);
  const std::string flipped = tmp_path("fuzz_flip.tlog");
  int rejected = 0;
  // Flip one bit at a spread of positions covering header, payload, footer.
  for (std::size_t pos = 0; pos < whole.size();
       pos += 1 + whole.size() / 97) {
    std::string mut = whole;
    mut[pos] = static_cast<char>(mut[pos] ^ 0x40);
    spit(flipped, mut);
    try {
      report::ScheduleRecorder recorder;
      replay(flipped, recorder);
      // A flip in slack space may legitimately decode; it must at least
      // not crash (ASan/UBSan would flag any unchecked read).
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0) << "no corruption was ever detected";
}

// ---------------------------------------------------------------------------
// Bounded memory: the point of the subsystem.  The tarr::prof counting
// allocator charges every operator-new to the enclosing ProfScope; a
// streaming writer's allocation volume must stay O(block), while the
// buffering ScheduleRecorder's grows with the event count.

/// Feed `events` synthetic transfer events (with a stage each `stride`) to
/// `sink` inside a ProfScope and return the requested allocation bytes.
long long charge_synthetic(trace::TraceSink& sink, int events,
                           const char* label) {
  prof::link_memhook();
  prof::Profiler profiler;
  {
    prof::ScopedThreadProfiler guard(&profiler);
    prof::ProfScope scope(label);
    trace::TransferEvent t;
    trace::StageEvent s;
    for (int i = 0; i < events; ++i) {
      t.stage = i / 64;
      t.src_rank = i % 97;
      t.dst_rank = (i * 7) % 97;
      t.bytes = 256 + i % 13;
      t.start = 1.0 * i;
      t.duration = 2.0 + 0.25 * (i % 5);
      sink.on_transfer(t);
      if (i % 64 == 63) {
        s.stage = i / 64;
        s.transfers = 64;
        s.start = 1.0 * i;
        s.duration = 3.0;
        sink.on_stage(s);
      }
    }
  }
  const prof::Profile p = profiler.snapshot();
  EXPECT_TRUE(p.mem_tracked);
  const prof::ProfileEntry* e = p.find(label);
  return e == nullptr ? 0 : static_cast<long long>(e->mem_bytes_total);
}

TEST(Memory, WriterAllocationIsIndependentOfEventCount) {
  const int kSmall = 20'000;
  const int kLarge = 20 * kSmall;
  TlogSink small_sink(tmp_path("mem_small.tlog"));
  const long long small_bytes =
      charge_synthetic(small_sink, kSmall, "tlog-small");
  small_sink.finish();
  TlogSink large_sink(tmp_path("mem_large.tlog"));
  const long long large_bytes =
      charge_synthetic(large_sink, kLarge, "tlog-large");
  large_sink.finish();
  // 20x the events must not even double the allocation volume: the block
  // buffer reaches its steady-state capacity and is reused thereafter.
  EXPECT_LT(large_bytes, 2 * small_bytes + (1 << 16))
      << small_bytes << " -> " << large_bytes;

  // Contrast: the buffering recorder grows linearly with the stream.
  report::ScheduleRecorder small_rec;
  const long long rec_small = charge_synthetic(small_rec, kSmall, "rec-small");
  report::ScheduleRecorder large_rec;
  const long long rec_large = charge_synthetic(large_rec, kLarge, "rec-large");
  EXPECT_GT(rec_large, 5 * rec_small)
      << rec_small << " -> " << rec_large;
  // And the streamed capture still holds every event.
  const FileInfo info = read_info(tmp_path("mem_large.tlog"));
  EXPECT_EQ(info.stored_events(),
            static_cast<long long>(kLarge) + kLarge / 64);
}

}  // namespace
}  // namespace tarr::tlog
