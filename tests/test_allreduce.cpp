#include "collectives/allreduce.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "core/framework.hpp"
#include "simmpi/layout.hpp"

namespace tarr::collectives {
namespace {

using simmpi::Communicator;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

class AllreduceRd : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceRd, EveryRankHoldsXorOfAllContributions) {
  const int p = GetParam();
  const Machine m = Machine::gpc(std::max(1, (p + 7) / 8));
  if (p > m.total_cores()) GTEST_SKIP();
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 256, 1);
  std::uint32_t expected = 0;
  for (Rank r = 0; r < p; ++r) {
    const std::uint32_t tag = 0x1000u + 37u * r;
    eng.set_block(r, 0, tag);
    expected ^= tag;
  }
  run_allreduce_rd(eng);
  for (Rank r = 0; r < p; ++r) EXPECT_EQ(eng.block(r, 0), expected);
}

INSTANTIATE_TEST_SUITE_P(Pow2, AllreduceRd,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

TEST(AllreduceRdErrors, RejectsNonPow2) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 6, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, 1);
  EXPECT_THROW(run_allreduce_rd(eng), Error);
}

class Rabenseifner : public ::testing::TestWithParam<int> {};

TEST_P(Rabenseifner, BlockwiseXorReduction) {
  const int p = GetParam();
  const Machine m = Machine::gpc(std::max(1, (p + 7) / 8));
  if (p > m.total_cores()) GTEST_SKIP();
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 64, p);
  std::vector<std::uint32_t> expected(p, 0);
  for (Rank r = 0; r < p; ++r) {
    for (int b = 0; b < p; ++b) {
      const std::uint32_t tag = 0x10000u + 101u * r + b;
      eng.set_block(r, b, tag);
      expected[b] ^= tag;
    }
  }
  run_allreduce_rabenseifner(eng);
  for (Rank r = 0; r < p; ++r)
    for (int b = 0; b < p; ++b) EXPECT_EQ(eng.block(r, b), expected[b]);
}

INSTANTIATE_TEST_SUITE_P(Pow2, Rabenseifner,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

class AllreduceRing : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceRing, EveryRankHoldsXorOfAllContributions) {
  const int p = GetParam();
  const Machine m = Machine::gpc(std::max(1, (p + 7) / 8));
  if (p > m.total_cores()) GTEST_SKIP();
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  // Ring reduce-scatter + allgather works on p chunks: buf_blocks = p.
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Data, 256, p);
  std::vector<std::uint32_t> expected(static_cast<std::size_t>(p), 0);
  for (Rank r = 0; r < p; ++r)
    for (int b = 0; b < p; ++b) {
      const std::uint32_t tag = 0x2000u + 41u * r + 7u * b;
      eng.set_block(r, b, tag);
      expected[static_cast<std::size_t>(b)] ^= tag;
    }
  run_allreduce_ring(eng);
  for (Rank r = 0; r < p; ++r)
    for (int b = 0; b < p; ++b)
      EXPECT_EQ(eng.block(r, b), expected[static_cast<std::size_t>(b)])
          << "rank " << r << " block " << b;
}

// Unlike recursive doubling, the ring handles non-powers-of-two too.
INSTANTIATE_TEST_SUITE_P(AnyP, AllreduceRing,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16));

TEST(AllreduceRing, TimedModeChargesPositiveCost) {
  const Machine m = Machine::gpc(2);
  const int p = 16;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Engine eng(comm, simmpi::CostConfig{}, ExecMode::Timed, 4096, p);
  const Usec t = run_allreduce_ring(eng);
  EXPECT_GT(t, 0.0);
}

TEST(AllreduceReordered, RdmhReorderPreservesResult) {
  // Reductions are order-independent: a reordered communicator needs no
  // §V-B mechanism and must produce the identical value.
  const Machine m = Machine::gpc(4);
  const int p = 32;
  const Communicator comm(
      m, make_layout(m, p,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Scatter}));
  core::ReorderFramework fw(m);
  const auto rc = fw.reorder(comm, mapping::Pattern::RecursiveDoubling);

  Engine eng(rc.comm, simmpi::CostConfig{}, ExecMode::Data, 128, 1);
  std::uint32_t expected = 0;
  for (Rank j = 0; j < p; ++j) {
    // Contribution is keyed to the *process* (its original rank).
    const std::uint32_t tag = 7919u * rc.oldrank[j];
    eng.set_block(j, 0, tag);
    expected ^= tag;
  }
  run_allreduce_rd(eng);
  for (Rank j = 0; j < p; ++j) EXPECT_EQ(eng.block(j, 0), expected);
}

TEST(AllreduceCost, RabenseifnerBeatsRdForLargeMessages) {
  // The bandwidth-optimal algorithm must win at scale for large vectors.
  const Machine m = Machine::gpc(8);
  const int p = 64;
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  const Bytes msg = 1 << 20;

  Engine rd(comm, simmpi::CostConfig{}, ExecMode::Timed, msg, 1);
  const Usec t_rd = run_allreduce_rd(rd);

  Engine rab(comm, simmpi::CostConfig{}, ExecMode::Timed, msg / p, p);
  const Usec t_rab = run_allreduce_rabenseifner(rab);
  EXPECT_LT(t_rab, t_rd);
}

}  // namespace
}  // namespace tarr::collectives
