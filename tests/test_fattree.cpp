#include "topology/fattree.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tarr::topology {
namespace {

int count_kind(const SwitchGraph& g, VertexKind k) {
  int n = 0;
  for (int v = 0; v < g.num_vertices(); ++v)
    if (g.vertex(v).kind == k) ++n;
  return n;
}

TEST(GpcNetwork, PaperTopologyCounts) {
  // Full GPC tree as in Fig 2: 32 leaves x 30 nodes, two core switches each
  // built from 18 line and 9 spine switches.
  const SwitchGraph g = build_gpc_network(960);
  EXPECT_EQ(count_kind(g, VertexKind::Host), 960);
  EXPECT_EQ(count_kind(g, VertexKind::LeafSwitch), 32);
  EXPECT_EQ(count_kind(g, VertexKind::LineSwitch), 2 * 18);
  EXPECT_EQ(count_kind(g, VertexKind::SpineSwitch), 2 * 9);
  EXPECT_EQ(g.num_hosts(), 960);
}

TEST(GpcNetwork, LeafUplinksAndBlockingRatio) {
  const SwitchGraph g = build_gpc_network(960);
  // Every leaf has 30 host links (cap 1) and one cap-3 bundle to each core
  // switch: 5:1 oversubscription (30 down / 6 up).
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (g.vertex(v).kind != VertexKind::LeafSwitch) continue;
    int down = 0, up = 0;
    for (LinkId l : g.incident(v)) {
      const auto& link = g.link(l);
      const auto other = g.other_end(l, v);
      if (g.vertex(other).kind == VertexKind::Host) {
        down += link.capacity;
      } else {
        EXPECT_EQ(g.vertex(other).kind, VertexKind::LineSwitch);
        up += link.capacity;
      }
    }
    EXPECT_EQ(down, 30);
    EXPECT_EQ(up, 6);  // 3 cables to each of 2 core switches
  }
}

TEST(GpcNetwork, LineToSpineWiring) {
  const SwitchGraph g = build_gpc_network(60);
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (g.vertex(v).kind != VertexKind::LineSwitch) continue;
    int spine_cables = 0;
    for (LinkId l : g.incident(v)) {
      if (g.vertex(g.other_end(l, v)).kind == VertexKind::SpineSwitch)
        spine_cables += g.link(l).capacity;
    }
    EXPECT_EQ(spine_cables, 9 * 2);  // 2 cables to each of 9 spines
  }
}

TEST(GpcNetwork, NodesAttachToConsecutiveLeaves) {
  const SwitchGraph g = build_gpc_network(61);
  // Node 0 and node 29 share a leaf; node 30 is on the next leaf.
  auto leaf_of = [&](NodeId n) {
    const auto h = g.host_vertex(n);
    return g.other_end(g.incident(h).front(), h);
  };
  EXPECT_EQ(leaf_of(0), leaf_of(29));
  EXPECT_NE(leaf_of(29), leaf_of(30));
  EXPECT_EQ(leaf_of(30), leaf_of(59));
  EXPECT_NE(leaf_of(59), leaf_of(60));
}

TEST(GpcNetwork, RejectsTooManyNodes) {
  EXPECT_THROW(build_gpc_network(961), Error);
  EXPECT_THROW(build_gpc_network(0), Error);
}

TEST(SingleSwitchNetwork, StarShape) {
  const SwitchGraph g = build_single_switch_network(5);
  EXPECT_EQ(g.num_hosts(), 5);
  EXPECT_EQ(g.num_links(), 5);
  EXPECT_EQ(count_kind(g, VertexKind::Switch), 1);
}

TEST(TwoLevelFatTree, Shape) {
  const SwitchGraph g = build_two_level_fattree(8, 4, 2, 1);
  EXPECT_EQ(g.num_hosts(), 8);
  EXPECT_EQ(count_kind(g, VertexKind::LeafSwitch), 2);
  EXPECT_EQ(count_kind(g, VertexKind::SpineSwitch), 2);
  // links: 2 leaves x 2 spines + 8 hosts = 12.
  EXPECT_EQ(g.num_links(), 12);
}

TEST(TwoLevelFatTree, PartialLastLeaf) {
  const SwitchGraph g = build_two_level_fattree(5, 4, 1);
  EXPECT_EQ(g.num_hosts(), 5);
  EXPECT_EQ(count_kind(g, VertexKind::LeafSwitch), 2);
}

TEST(GpcTreeConfig, ValidateRejectsEveryNonPositiveField) {
  EXPECT_NO_THROW(validate(GpcTreeConfig{}));
  auto expect_bad = [](GpcTreeConfig cfg) {
    EXPECT_THROW(validate(cfg), Error);
    EXPECT_THROW(build_gpc_network(1, cfg), Error);
  };
  expect_bad(GpcTreeConfig{.num_leaves = 0});
  expect_bad(GpcTreeConfig{.nodes_per_leaf = -1});
  expect_bad(GpcTreeConfig{.num_cores = 0});
  expect_bad(GpcTreeConfig{.uplinks_per_core = 0});
  expect_bad(GpcTreeConfig{.lines_per_core = 0});
  expect_bad(GpcTreeConfig{.spines_per_core = 0});
  expect_bad(GpcTreeConfig{.leaves_per_line = 0});
  expect_bad(GpcTreeConfig{.line_spine_capacity = 0});
}

TEST(GpcTreeConfig, ValidateRejectsLeafOverflow) {
  // 32 leaves at 1 leaf per line switch need 32 line switches, not 18.
  GpcTreeConfig cfg;
  cfg.leaves_per_line = 1;
  EXPECT_THROW(validate(cfg), Error);
  cfg = GpcTreeConfig{};
  cfg.num_leaves = 18 * 6 + 1;
  EXPECT_THROW(validate(cfg), Error);
}

TEST(TwoLevelFatTree, RejectsNonPositiveArguments) {
  EXPECT_THROW(build_two_level_fattree(0, 4, 2), Error);
  EXPECT_THROW(build_two_level_fattree(8, 0, 2), Error);
  EXPECT_THROW(build_two_level_fattree(8, 4, 0), Error);
  EXPECT_THROW(build_two_level_fattree(8, 4, 2, 0), Error);
  EXPECT_THROW(build_two_level_fattree(-3, 4, 2), Error);
}

}  // namespace
}  // namespace tarr::topology
