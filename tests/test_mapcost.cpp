#include "mapping/mapcost.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/pattern.hpp"

namespace tarr::mapping {
namespace {

topology::DistanceMatrix line_distances(int n) {
  topology::DistanceMatrix d(n);
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b) d.set(a, b, static_cast<float>(b - a));
  return d;
}

TEST(MapCost, HandComputedRing) {
  // Ring on 4 ranks: edges (i, i+1 mod 4) each weight 3.
  const auto g = graph::ring_pattern(4);
  const auto d = line_distances(4);
  // Identity placement: distances 1,1,1 and the wrap edge 3 -> cost 3*6=18.
  EXPECT_DOUBLE_EQ(mapping_cost(g, {0, 1, 2, 3}, d), 3.0 * (1 + 1 + 1 + 3));
  // Interleaved placement 0,2,1,3: |0-2|+|2-1|+|1-3|+|3-0| = 2+1+2+3 = 8.
  EXPECT_DOUBLE_EQ(mapping_cost(g, {0, 2, 1, 3}, d), 3.0 * 8);
}

TEST(MapCost, ZeroWhenAllColocated) {
  const auto g = graph::ring_pattern(4);
  topology::DistanceMatrix d(4, 0.0f);
  EXPECT_DOUBLE_EQ(mapping_cost(g, {0, 1, 2, 3}, d), 0.0);
}

TEST(MapCost, SizeMismatchThrows) {
  const auto g = graph::ring_pattern(4);
  const auto d = line_distances(4);
  EXPECT_THROW(mapping_cost(g, {0, 1, 2}, d), Error);
}

TEST(MapCost, WeightsScaleLinearly) {
  const auto bcast = graph::binomial_bcast_pattern(8);
  const auto gather = graph::binomial_gather_pattern(8);
  const auto d = line_distances(8);
  const std::vector<int> ident{0, 1, 2, 3, 4, 5, 6, 7};
  // Gather weights dominate bcast weights edge-for-edge (same tree).
  EXPECT_GT(mapping_cost(gather, ident, d), mapping_cost(bcast, ident, d));
}

}  // namespace
}  // namespace tarr::mapping
