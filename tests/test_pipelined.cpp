// Tests for the pipelined hierarchical allgather (phase overlap) and the
// layout-spec / transfer-observer additions.

#include <gtest/gtest.h>

#include <tuple>

#include "collectives/allgather.hpp"
#include "collectives/hierarchical.hpp"
#include "collectives/orderfix.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"
#include "core/framework.hpp"
#include "simmpi/layout.hpp"

namespace tarr::collectives {
namespace {

using core::ReorderFramework;
using simmpi::Communicator;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

class PipelinedHier
    : public ::testing::TestWithParam<std::tuple<int, IntraAlgo, bool,
                                                 OrderFix>> {};

TEST_P(PipelinedHier, OutputInOriginalRankOrder) {
  const auto [nodes, gather_algo, reorder, fix] = GetParam();
  const Machine m = Machine::gpc(nodes);
  const int p = m.total_cores();
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  Communicator use = comm;
  std::vector<Rank> oldrank = identity_permutation(p);
  if (reorder) {
    ReorderFramework fw(m);
    auto rc = fw.reorder_hierarchical(comm, mapping::Pattern::Ring, true);
    use = rc.comm;
    oldrank = rc.oldrank;
  }
  Engine eng(use, simmpi::CostConfig{}, ExecMode::Data, 32, p);
  run_hier_allgather_pipelined(eng, gather_algo, fix, oldrank);
  check_allgather_output(eng);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PipelinedHier,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8),
                       ::testing::Values(IntraAlgo::Linear,
                                         IntraAlgo::Binomial),
                       ::testing::Values(false, true),
                       ::testing::Values(OrderFix::InitComm,
                                         OrderFix::EndShuffle)));

TEST(PipelinedHierShape, OverlapBeatsSequentialPhases) {
  // The point of pipelining: with many nodes and a non-trivial message the
  // overlapped version must be faster than gather -> full ring -> bcast.
  const Machine m = Machine::gpc(32);
  const int p = m.total_cores();
  const Communicator comm(m, make_layout(m, p, LayoutSpec{}));
  const Bytes msg = 16 * 1024;

  Engine seq(comm, simmpi::CostConfig{}, ExecMode::Timed, msg, p);
  run_hier_allgather(seq,
                     HierAllgatherOptions{AllgatherAlgo::Ring,
                                          IntraAlgo::Binomial,
                                          OrderFix::None});
  Engine pipe(comm, simmpi::CostConfig{}, ExecMode::Timed, msg, p);
  run_hier_allgather_pipelined(pipe, IntraAlgo::Binomial, OrderFix::None,
                               identity_permutation(p));
  EXPECT_LT(pipe.total(), seq.total());
}

TEST(PipelinedHierShape, RejectsCyclicAndOddCores) {
  const Machine m = Machine::gpc(2);
  const Communicator cyclic(
      m, make_layout(m, 16,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Bunch}));
  Engine eng(cyclic, simmpi::CostConfig{}, ExecMode::Data, 32, 16);
  EXPECT_THROW(run_hier_allgather_pipelined(eng, IntraAlgo::Binomial,
                                            OrderFix::None),
               Error);
}

}  // namespace
}  // namespace tarr::collectives

namespace tarr::simmpi {
namespace {

TEST(ParseLayoutSpec, LibraryNames) {
  EXPECT_EQ(parse_layout_spec("block-bunch").node, NodeOrder::Block);
  EXPECT_EQ(parse_layout_spec("cyclic-scatter").socket,
            SocketOrder::Scatter);
}

TEST(ParseLayoutSpec, SlurmNames) {
  const LayoutSpec a = parse_layout_spec("block:block");
  EXPECT_EQ(a.node, NodeOrder::Block);
  EXPECT_EQ(a.socket, SocketOrder::Bunch);
  const LayoutSpec b = parse_layout_spec("cyclic:cyclic");
  EXPECT_EQ(b.node, NodeOrder::Cyclic);
  EXPECT_EQ(b.socket, SocketOrder::Scatter);
  const LayoutSpec c = parse_layout_spec("block:cyclic");
  EXPECT_EQ(c.node, NodeOrder::Block);
  EXPECT_EQ(c.socket, SocketOrder::Scatter);
}

TEST(ParseLayoutSpec, RejectsUnknown) {
  EXPECT_THROW(parse_layout_spec("plane"), Error);
  EXPECT_THROW(parse_layout_spec("block:plane"), Error);
  EXPECT_THROW(parse_layout_spec("fcyclic:block"), Error);
}

TEST(TransferObserver, ConservationLawForAllgather) {
  // Fundamental invariant: any correct allgather must import at least
  // (p - cores_on_node) * m bytes into every node, whatever the mapping.
  const topology::Machine m = topology::Machine::gpc(4);
  const int p = 32;
  const Bytes msg = 128;
  for (int layout_idx = 0; layout_idx < 4; ++layout_idx) {
    const Communicator comm(
        m, make_layout(m, p, all_layouts()[layout_idx]));
    for (auto algo : {collectives::AllgatherAlgo::RecursiveDoubling,
                      collectives::AllgatherAlgo::Ring,
                      collectives::AllgatherAlgo::Bruck}) {
      Engine eng(comm, CostConfig{}, ExecMode::Data, msg, p);
      std::vector<double> inbound(m.num_nodes(), 0.0);
      eng.set_transfer_observer([&](CoreId src, CoreId dst, Bytes bytes) {
        const NodeId a = m.node_of_core(src);
        const NodeId b = m.node_of_core(dst);
        if (a != b) inbound[b] += static_cast<double>(bytes);
      });
      collectives::run_allgather(
          eng, collectives::AllgatherOptions{algo,
                                             collectives::OrderFix::None});
      for (NodeId n = 0; n < m.num_nodes(); ++n) {
        int on_node = 0;
        for (Rank r = 0; r < p; ++r) on_node += comm.node_of(r) == n;
        if (on_node == 0) continue;
        EXPECT_GE(inbound[n] + 1e-9,
                  static_cast<double>(p - on_node) * msg)
            << collectives::to_string(algo) << " node " << n;
      }
    }
  }
}

TEST(TransferObserver, CyclicMakesRecursiveDoublingTrafficMinimal) {
  // The mechanism behind MVAPICH's internal block->cyclic reorder and
  // behind RDMH: under a cyclic placement, RD imports exactly
  // (p - on_node) * m bytes into each node (each rank pulls distinct
  // external blocks; the late heavy stages stay intra-node), while under a
  // block placement every rank pulls the full external data redundantly —
  // 8x the minimum on these 8-core nodes.
  const topology::Machine m = topology::Machine::gpc(4);
  const int p = 32;
  const Bytes msg = 64;

  auto inbound_per_node = [&](const LayoutSpec& spec) {
    const Communicator comm(m, make_layout(m, p, spec));
    Engine eng(comm, CostConfig{}, ExecMode::Data, msg, p);
    std::vector<double> inbound(m.num_nodes(), 0.0);
    eng.set_transfer_observer([&](CoreId src, CoreId dst, Bytes bytes) {
      if (m.node_of_core(src) != m.node_of_core(dst))
        inbound[m.node_of_core(dst)] += static_cast<double>(bytes);
    });
    collectives::run_allgather(
        eng,
        collectives::AllgatherOptions{
            collectives::AllgatherAlgo::RecursiveDoubling,
            collectives::OrderFix::None});
    return inbound;
  };

  const double minimum = static_cast<double>(p - 8) * msg;
  const auto cyclic = inbound_per_node(
      LayoutSpec{NodeOrder::Cyclic, SocketOrder::Bunch});
  for (NodeId n = 0; n < 4; ++n) EXPECT_DOUBLE_EQ(cyclic[n], minimum);

  const auto block = inbound_per_node(LayoutSpec{});
  for (NodeId n = 0; n < 4; ++n) EXPECT_DOUBLE_EQ(block[n], 8.0 * minimum);
}

}  // namespace
}  // namespace tarr::simmpi
