#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/error.hpp"

namespace tarr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng r(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng r(5);
  EXPECT_THROW(r.next_below(0), Error);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng r(13);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(4)];
  for (int c : counts) {
    EXPECT_GT(c, n / 4 - n / 40);
    EXPECT_LT(c, n / 4 + n / 40);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ZeroSeedProducesValidState) {
  Rng r(0);
  // Must not be stuck at zero.
  std::uint64_t x = r.next_u64() | r.next_u64() | r.next_u64();
  EXPECT_NE(x, 0u);
}

}  // namespace
}  // namespace tarr
