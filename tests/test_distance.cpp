#include "topology/distance.hpp"

#include <gtest/gtest.h>

namespace tarr::topology {
namespace {

class DistanceOnMachines : public ::testing::TestWithParam<int> {
 protected:
  Machine machine() const { return Machine::gpc(GetParam()); }
};

TEST_P(DistanceOnMachines, SymmetricWithZeroDiagonal) {
  const Machine m = machine();
  const DistanceMatrix d = extract_distances(m);
  ASSERT_EQ(d.size(), m.total_cores());
  for (CoreId a = 0; a < d.size(); a += 3) {
    EXPECT_EQ(d.at(a, a), 0.0f);
    for (CoreId b = 0; b < d.size(); b += 5) {
      EXPECT_EQ(d.at(a, b), d.at(b, a));
    }
  }
}

TEST_P(DistanceOnMachines, ChannelHierarchyOrdering) {
  // The property every heuristic relies on: same socket < cross socket <
  // any inter-node distance.
  const Machine m = machine();
  const DistanceMatrix d = extract_distances(m);
  const float same_socket = d.at(0, 1);
  const float cross_socket = d.at(0, 4);
  EXPECT_LT(same_socket, cross_socket);
  if (m.num_nodes() > 1) {
    const float inter = d.at(0, m.cores_per_node());
    EXPECT_LT(cross_socket, inter);
  }
}

TEST_P(DistanceOnMachines, InterNodeGrowsWithHops) {
  const Machine m = machine();
  if (m.num_nodes() <= 30) return;  // needs at least two leaves
  const DistanceMatrix d = extract_distances(m);
  const int cpn = m.cores_per_node();
  const float same_leaf = d.at(0, 1 * cpn);
  const float cross_leaf = d.at(0, 30 * cpn);
  EXPECT_LT(same_leaf, cross_leaf);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DistanceOnMachines,
                         ::testing::Values(1, 2, 8, 31, 64));

TEST(Distance, ConfigWeightsApplied) {
  const Machine m = Machine::gpc(2);
  DistanceConfig cfg;
  cfg.same_socket = 3.0f;
  cfg.cross_socket = 7.0f;
  cfg.inter_node_base = 100.0f;
  cfg.per_hop = 1.0f;
  const DistanceMatrix d = extract_distances(m, cfg);
  EXPECT_EQ(d.at(0, 1), 3.0f);
  EXPECT_EQ(d.at(0, 5), 7.0f);
  EXPECT_EQ(d.at(0, 8), 100.0f + 2.0f);  // same leaf = 2 hops
}

TEST(Distance, NodeDistances) {
  const Machine m = Machine::gpc(60);
  const DistanceMatrix d = extract_node_distances(m);
  ASSERT_EQ(d.size(), 60);
  EXPECT_EQ(d.at(3, 3), 0.0f);
  EXPECT_GT(d.at(0, 1), 0.0f);
  // Same-leaf nodes are closer than cross-leaf nodes.
  EXPECT_LT(d.at(0, 29), d.at(0, 30));
}

TEST(Distance, IntranodeDistances) {
  const Machine m = Machine::gpc(1);
  const DistanceMatrix d = extract_intranode_distances(m);
  ASSERT_EQ(d.size(), 8);
  EXPECT_EQ(d.at(0, 0), 0.0f);
  EXPECT_LT(d.at(0, 3), d.at(0, 4));
  EXPECT_EQ(d.at(1, 2), d.at(2, 1));
}

TEST(Distance, MatrixSetAndRow) {
  DistanceMatrix d(3, 1.0f);
  d.set(0, 2, 5.0f);
  EXPECT_EQ(d.at(0, 2), 5.0f);
  EXPECT_EQ(d.at(2, 0), 5.0f);
  const float* row = d.row(0);
  EXPECT_EQ(row[2], 5.0f);
  EXPECT_EQ(row[1], 1.0f);
}

}  // namespace
}  // namespace tarr::topology
