// Tests for the CSV writer and the DOT pattern-graph export.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "bench/csv.hpp"
#include "common/error.hpp"
#include "graph/pattern.hpp"

namespace tarr {
namespace {

TEST(CsvWriter, BasicSerialization) {
  bench::CsvWriter w;
  w.set_header({"msg", "impr"});
  w.add_row({"1K", "42.5"});
  w.add_row({"256K", "-3.5"});
  EXPECT_EQ(w.to_string(), "msg,impr\n1K,42.5\n256K,-3.5\n");
  EXPECT_EQ(w.rows(), 2u);
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  bench::CsvWriter w;
  w.add_row({"a,b", "he said \"hi\"", "multi\nline", "plain"});
  EXPECT_EQ(w.to_string(),
            "\"a,b\",\"he said \"\"hi\"\"\",\"multi\nline\",plain\n");
}

TEST(CsvWriter, QuotesCarriageReturnsPerRfc4180) {
  // A bare \r (or a \r\n pair) inside a field must force quoting, exactly
  // like \n — otherwise CRLF-tolerant readers split the row in two.
  bench::CsvWriter w;
  w.add_row({"cr\rfield", "crlf\r\nfield", "plain"});
  EXPECT_EQ(w.to_string(), "\"cr\rfield\",\"crlf\r\nfield\",plain\n");
}

TEST(CsvWriter, WritesFile) {
  const std::string path = ::testing::TempDir() + "/tarr_test.csv";
  bench::CsvWriter w;
  w.set_header({"x"});
  w.add_row({"1"});
  w.write(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::getline(in, line);
  EXPECT_EQ(line, "1");
  std::remove(path.c_str());
  EXPECT_THROW(w.write("/nonexistent/dir/x.csv"), Error);
}

TEST(GraphDot, RendersEdgesWithWeights) {
  const graph::WeightedGraph g = graph::ring_pattern(4);
  const std::string dot = g.to_dot("ring4");
  EXPECT_NE(dot.find("graph ring4 {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"3\""), std::string::npos);  // weight p-1 = 3
  EXPECT_NE(dot.find("}\n"), std::string::npos);
}

TEST(GraphDot, RequiresFinalize) {
  graph::WeightedGraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.to_dot(), Error);
}

TEST(GraphDot, EveryEdgeAppearsOnce) {
  const graph::WeightedGraph g = graph::recursive_doubling_pattern(8);
  const std::string dot = g.to_dot();
  std::size_t count = 0, pos = 0;
  while ((pos = dot.find(" -- ", pos)) != std::string::npos) {
    ++count;
    pos += 4;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(g.num_edges()));
}

}  // namespace
}  // namespace tarr
