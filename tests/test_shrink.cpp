// Shrink-and-continue: dead nodes excised, collectives rebuilt over the
// survivors on the degraded machine, audited end to end in Data mode.

#include "fault/shrink.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "check/audit_engine.hpp"
#include "collectives/allgather.hpp"
#include "collectives/gather_bcast.hpp"
#include "common/error.hpp"
#include "common/permutation.hpp"
#include "fault/degraded.hpp"
#include "fault/fault_mask.hpp"
#include "mapping/mapper.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"
#include "topology/fattree.hpp"

namespace tarr::fault {
namespace {

using simmpi::Communicator;
using simmpi::Engine;
using simmpi::ExecMode;
using topology::Machine;

/// Two cores per node so a 16-rank block layout spans all 8 nodes (rank 2t
/// and 2t+1 live on node t).
Machine small_machine(int nodes = 8) {
  return Machine(topology::NodeShape{.sockets = 1, .cores_per_socket = 2},
                 topology::build_two_level_fattree(nodes, 4, 2));
}

TEST(Shrink, SurvivorsKeepRelativeOrder) {
  const Machine base = small_machine();
  const Communicator parent(base, simmpi::make_layout(base, 16, {}));
  const DegradedTopology topo(base, FaultMask{}.fail_node(1).fail_node(6));
  const ShrunkComm shrunk = shrink_communicator(topo, parent);

  // 8 nodes x 2 ranks each; nodes 1 and 6 die -> ranks {2,3,12,13} die.
  EXPECT_EQ(shrunk.comm.size(), 12);
  EXPECT_EQ(shrunk.dead_ranks, (std::vector<Rank>{2, 3, 12, 13}));
  ASSERT_EQ(shrunk.parent_rank.size(), 12u);
  for (std::size_t j = 1; j < shrunk.parent_rank.size(); ++j)
    EXPECT_LT(shrunk.parent_rank[j - 1], shrunk.parent_rank[j]);
  for (Rank j = 0; j < shrunk.comm.size(); ++j)
    EXPECT_EQ(shrunk.comm.core_of(j), parent.core_of(shrunk.parent_rank[j]));
}

TEST(Shrink, EmptyMaskIsIdentity) {
  const Machine base = small_machine();
  const Communicator parent(base, simmpi::make_layout(base, 16, {}));
  const DegradedTopology topo(base, FaultMask{});
  const ShrunkComm shrunk = shrink_communicator(topo, parent);
  EXPECT_EQ(shrunk.comm.size(), parent.size());
  EXPECT_TRUE(shrunk.dead_ranks.empty());
  EXPECT_EQ(shrunk.comm.rank_to_core(), parent.rank_to_core());
}

TEST(Shrink, AllDeadThrows) {
  const Machine base = small_machine();
  const Communicator parent(base, simmpi::make_layout(base, 4, {}));  // 2 nodes
  const DegradedTopology topo(base, FaultMask{}.fail_node(0).fail_node(1));
  EXPECT_THROW(shrink_communicator(topo, parent), Error);
}

TEST(Shrink, PartitionReportsStructuredComponents) {
  // Kill both spines: every leaf becomes its own island.  Survivor ranks
  // span several islands -> structured PartitionedError.
  const Machine base = small_machine();
  const topology::SwitchGraph& g = base.network();
  FaultMask mask;
  for (NetVertexId v = 0; v < g.num_vertices(); ++v)
    if (g.vertex(v).kind == topology::VertexKind::SpineSwitch)
      mask.fail_switch(v);
  const DegradedTopology topo(base, std::move(mask));
  const Communicator parent(base, simmpi::make_layout(base, 16, {}));
  try {
    shrink_communicator(topo, parent);
    FAIL() << "expected PartitionedError";
  } catch (const topology::PartitionedError& e) {
    EXPECT_EQ(e.info().components.size(), 2u);  // two 4-node leaf islands
    EXPECT_EQ(e.info().components[0], (std::vector<NodeId>{0, 1, 2, 3}));
    EXPECT_EQ(e.info().components[1], (std::vector<NodeId>{4, 5, 6, 7}));
    EXPECT_NE(std::string(e.what()).find("partitioned"), std::string::npos);
  }
}

TEST(Shrink, PartitionIgnoredWhenSurvivorsFitOneComponent) {
  // Same two-island fabric, but the parent only occupies the first leaf:
  // the survivors are mutually connected, so shrink succeeds.
  const Machine base = small_machine();
  const topology::SwitchGraph& g = base.network();
  FaultMask mask;
  for (NetVertexId v = 0; v < g.num_vertices(); ++v)
    if (g.vertex(v).kind == topology::VertexKind::SpineSwitch)
      mask.fail_switch(v);
  const DegradedTopology topo(base, std::move(mask));
  const Communicator parent(base, simmpi::make_layout(base, 8, {}));  // leaf 0
  const ShrunkComm shrunk = shrink_communicator(topo, parent);
  EXPECT_EQ(shrunk.comm.size(), 8);
}

/// Runs each collective over the shrunken communicator in Data mode and
/// audits the results with the survivor-aware contracts.
void run_and_audit_survivor_collectives(const DegradedTopology& topo,
                                        const Communicator& parent) {
  const ShrunkComm shrunk = shrink_communicator(topo, parent);
  const int s = shrunk.comm.size();
  const auto identity = identity_permutation(s);

  {
    Engine eng(shrunk.comm, simmpi::CostConfig{}, ExecMode::Data, 64, s);
    collectives::run_allgather(
        eng,
        {collectives::AllgatherAlgo::Ring, collectives::OrderFix::None},
        identity);
    check::audit_shrunken_allgather(eng, parent.size(), shrunk.parent_rank);
  }
  {
    Engine eng(shrunk.comm, simmpi::CostConfig{}, ExecMode::Data, 64, s);
    collectives::run_gather(eng, collectives::TreeAlgo::Binomial,
                            collectives::OrderFix::EndShuffle, identity);
    check::audit_shrunken_gather(eng, parent.size(), shrunk.parent_rank);
  }
  {
    Engine eng(shrunk.comm, simmpi::CostConfig{}, ExecMode::Data, 64, s);
    collectives::run_bcast(eng, collectives::TreeAlgo::Binomial);
    check::audit_shrunken_bcast(eng, parent.size(), shrunk.parent_rank,
                                collectives::kBcastMessageTag);
  }
}

TEST(Shrink, SurvivorCollectivesPassExtendedAudit) {
  const Machine base = small_machine();
  const Communicator parent(base, simmpi::make_layout(base, 16, {}));
  const DegradedTopology topo(base,
                              FaultMask{}.fail_node(0).fail_node(3).fail_node(5));
  run_and_audit_survivor_collectives(topo, parent);
}

TEST(Shrink, SurvivorCollectivesPassAuditUnderLinkLossToo) {
  // Node failures combined with a cut spine uplink: routes change but the
  // survivors stay connected via the second spine.
  const Machine base = small_machine();
  const Communicator parent(base, simmpi::make_layout(base, 16, {}));
  const DegradedTopology topo(base, FaultMask{}.fail_node(2).fail_link(0));
  run_and_audit_survivor_collectives(topo, parent);
}

TEST(Shrink, ParentOnWrongMachineRejected) {
  const Machine base = small_machine();
  const Machine other = small_machine(4);
  const Communicator parent(other, simmpi::make_layout(other, 8, {}));
  const DegradedTopology topo(base, FaultMask{}.fail_node(1));
  EXPECT_THROW(shrink_communicator(topo, parent), Error);
}

TEST(DegradedTopology, DistanceMatrixFeedsAllMappers) {
  // The degraded distance matrix is a drop-in input for every mapper: all
  // five heuristics must produce valid mappings over survivor slots using
  // distances extracted from the degraded router.
  const Machine base = small_machine();
  const DegradedTopology topo(base, FaultMask{}.fail_link(1));
  const topology::DistanceMatrix d = topo.distances();
  const Communicator parent(base, simmpi::make_layout(base, 16, {}));
  const ShrunkComm shrunk = shrink_communicator(topo, parent);
  const std::vector<int> slots(shrunk.comm.rank_to_core().begin(),
                               shrunk.comm.rank_to_core().end());
  for (auto pattern :
       {mapping::Pattern::RecursiveDoubling, mapping::Pattern::Ring,
        mapping::Pattern::BinomialBcast, mapping::Pattern::BinomialGather,
        mapping::Pattern::Bruck}) {
    Rng rng(17);
    const auto mapper = mapping::make_heuristic(pattern);
    // RDMH wants a power-of-two process count.
    const std::vector<int> input(
        slots.begin(),
        pattern == mapping::Pattern::RecursiveDoubling ? slots.begin() + 16
                                                       : slots.end());
    EXPECT_NO_THROW(mapper->checked_map(input, d, rng)) << mapper->name();
  }
}

TEST(DegradedTopology, SplitPairsPricedAtInfinity) {
  const Machine base = small_machine();
  const topology::SwitchGraph& g = base.network();
  FaultMask mask;
  for (NetVertexId v = 0; v < g.num_vertices(); ++v)
    if (g.vertex(v).kind == topology::VertexKind::SpineSwitch)
      mask.fail_switch(v);
  const DegradedTopology topo(base, std::move(mask));
  const topology::DistanceMatrix d = topo.node_distances();
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(d.at(0, 4), inf);  // across the cut
  EXPECT_LT(d.at(0, 3), inf);  // same island
  EXPECT_LT(d.at(4, 7), inf);
}

}  // namespace
}  // namespace tarr::fault
