#include "graph/apppattern.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/framework.hpp"
#include "mapping/comparators.hpp"
#include "mapping/mapcost.hpp"
#include "simmpi/layout.hpp"

namespace tarr::graph {
namespace {

TEST(Stencil2d, EdgeCountAndWeights) {
  const WeightedGraph g = stencil2d_pattern(4, 3, 2.5);
  EXPECT_EQ(g.num_vertices(), 12);
  // Horizontal: 3*3 = 9; vertical: 4*2 = 8.
  EXPECT_EQ(g.num_edges(), 17);
  for (const auto& e : g.edges()) EXPECT_DOUBLE_EQ(e.w, 2.5);
}

TEST(Stencil2d, InteriorVertexHasFourNeighbors) {
  const WeightedGraph g = stencil2d_pattern(3, 3);
  EXPECT_EQ(g.neighbors(4).size(), 4u);  // center of 3x3
  EXPECT_EQ(g.neighbors(0).size(), 2u);  // corner
}

TEST(Stencil3d, EdgeCount) {
  const WeightedGraph g = stencil3d_pattern(3, 3, 3);
  EXPECT_EQ(g.num_vertices(), 27);
  // 2*3*3 per dimension * 3 dimensions = 54.
  EXPECT_EQ(g.num_edges(), 54);
  EXPECT_EQ(g.neighbors(13).size(), 6u);  // center
}

TEST(RingWithShortcuts, Structure) {
  const WeightedGraph g = ring_with_shortcuts_pattern(16);
  // Neighbors of 0 include 1, 15 (ring) and 2, 4, 8 (shortcuts).
  EXPECT_EQ(g.neighbors(0).size(), 5u);
}

TEST(RandomSparse, DeterministicAndValid) {
  Rng a(5), b(5);
  const WeightedGraph g1 = random_sparse_pattern(32, 3, a);
  const WeightedGraph g2 = random_sparse_pattern(32, 3, b);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_GE(g1.num_edges(), 32 * 3 / 2);  // merged duplicates may reduce
  for (const auto& e : g1.edges()) {
    EXPECT_NE(e.u, e.v);
    EXPECT_GE(e.w, 1.0);
  }
}

TEST(AppPatternErrors, BadParameters) {
  EXPECT_THROW(stencil2d_pattern(1, 1), Error);
  EXPECT_THROW(stencil3d_pattern(0, 2, 2), Error);
  EXPECT_THROW(ring_with_shortcuts_pattern(1), Error);
  Rng r(1);
  EXPECT_THROW(random_sparse_pattern(4, 4, r), Error);
}

TEST(GeneralMapping, BisectionFindsStencilTiles) {
  // The §V "general forms" path: recursive bipartitioning of an 8x8 stencil
  // onto 8 nodes finds 2D tiles (cut 32) rather than rows (cut 56), so the
  // weighted cost drops well below both the cyclic initial layout and the
  // greedy mapper's row packing.
  const topology::Machine m = topology::Machine::gpc(8);
  const int p = 64;
  const WeightedGraph pattern = stencil2d_pattern(8, 8);
  const auto cores = simmpi::make_layout(
      m, p, {simmpi::NodeOrder::Cyclic, simmpi::SocketOrder::Scatter});
  const std::vector<int> initial(cores.begin(), cores.end());
  const auto dist = topology::extract_distances(m);

  Rng r1(7);
  const auto bisected = mapping::scotch_like_map(pattern, initial, r1);
  const double cost_initial = mapping::mapping_cost(pattern, initial, dist);
  const double cost_bisected = mapping::mapping_cost(pattern, bisected, dist);
  EXPECT_LT(cost_bisected, 0.8 * cost_initial);

  // Greedy packs rows: valid and not worse than the initial layout, but
  // weaker than bisection on this uniform-weight pattern.
  Rng r2(7);
  const auto greedy = mapping::greedy_graph_map(pattern, initial, dist, r2);
  EXPECT_LE(mapping::mapping_cost(pattern, greedy, dist),
            cost_initial * 1.001);
  EXPECT_LE(cost_bisected, mapping::mapping_cost(pattern, greedy, dist));
}

TEST(GeneralMapping, ScotchLikeMapsArbitraryGraph) {
  const topology::Machine m = topology::Machine::gpc(4);
  const int p = 32;
  const WeightedGraph pattern = stencil2d_pattern(8, 4);
  const auto cores = simmpi::make_layout(m, p, simmpi::LayoutSpec{});
  const std::vector<int> initial(cores.begin(), cores.end());
  Rng rng(9);
  const auto result = mapping::scotch_like_map(pattern, initial, rng);
  auto sorted_init = initial;
  auto sorted_res = result;
  std::sort(sorted_init.begin(), sorted_init.end());
  std::sort(sorted_res.begin(), sorted_res.end());
  EXPECT_EQ(sorted_init, sorted_res);
}

TEST(GeneralMapping, FrameworkReorderForGraph) {
  const topology::Machine m = topology::Machine::gpc(4);
  core::ReorderFramework fw(m);
  const simmpi::Communicator comm(
      m, simmpi::make_layout(
             m, 32, {simmpi::NodeOrder::Cyclic, simmpi::SocketOrder::Bunch}));
  const WeightedGraph pattern = stencil2d_pattern(8, 4);
  const auto rc = fw.reorder_for_graph(comm, pattern);
  // Core set preserved, oldrank consistent.
  for (Rank j = 0; j < comm.size(); ++j)
    EXPECT_EQ(rc.comm.core_of(j), comm.core_of(rc.oldrank[j]));
  EXPECT_GE(rc.mapping_seconds, 0.0);
  // Size mismatch is rejected.
  EXPECT_THROW(fw.reorder_for_graph(comm, stencil2d_pattern(4, 4)), Error);
}

TEST(GeneralMapping, MismatchedGraphRejected) {
  const topology::Machine m = topology::Machine::gpc(1);
  const auto dist = topology::extract_distances(m);
  Rng rng(1);
  EXPECT_THROW(
      mapping::greedy_graph_map(stencil2d_pattern(2, 2), {0, 1}, dist, rng),
      Error);
  EXPECT_THROW(mapping::scotch_like_map(stencil2d_pattern(2, 2), {0, 1}, rng),
               Error);
}

}  // namespace
}  // namespace tarr::graph
