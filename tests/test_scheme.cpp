#include "mapping/scheme.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "topology/distance.hpp"

namespace tarr::mapping {
namespace {

using topology::DistanceMatrix;

/// A simple line-metric distance matrix over n slots.
DistanceMatrix line_distances(int n) {
  DistanceMatrix d(n);
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      d.set(a, b, static_cast<float>(b - a));
  return d;
}

TEST(MappingState, FixesRankZero) {
  const DistanceMatrix d = line_distances(4);
  Rng rng(1);
  MappingState st({2, 0, 1, 3}, d, rng);
  EXPECT_TRUE(st.is_mapped(0));
  EXPECT_EQ(st.slot_of(0), 2);  // rank 0 stays on its current slot
  EXPECT_EQ(st.num_mapped(), 1);
  EXPECT_FALSE(st.done());
}

TEST(MappingState, FindClosestPicksMinimumDistance) {
  const DistanceMatrix d = line_distances(8);
  Rng rng(1);
  MappingState st({3, 0, 1, 7}, d, rng);
  // Free slots are {0, 1, 7}; closest to slot 3 is 1.
  EXPECT_EQ(st.find_closest_to(0), 1);
}

TEST(MappingState, TieBreakIsRandomButValid) {
  // Slots 2 and 4 are equidistant from slot 3.
  const DistanceMatrix d = line_distances(8);
  int picked2 = 0, picked4 = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Rng rng(seed);
    MappingState st({3, 2, 4}, d, rng);
    const int s = st.find_closest_to(0);
    EXPECT_TRUE(s == 2 || s == 4);
    (s == 2 ? picked2 : picked4)++;
  }
  EXPECT_GT(picked2, 0);
  EXPECT_GT(picked4, 0);
}

TEST(MappingState, AssignConsumesSlot) {
  const DistanceMatrix d = line_distances(4);
  Rng rng(1);
  MappingState st({0, 1, 2, 3}, d, rng);
  st.assign(2, 1);
  EXPECT_TRUE(st.is_mapped(2));
  EXPECT_EQ(st.slot_of(2), 1);
  EXPECT_THROW(st.assign(3, 1), Error);  // slot already taken
  EXPECT_THROW(st.assign(2, 3), Error);  // rank already mapped
}

TEST(MappingState, MapCloseToWalksOutward) {
  const DistanceMatrix d = line_distances(8);
  Rng rng(1);
  MappingState st({4, 3, 5, 0, 7}, d, rng);
  st.map_close_to(1, 0);  // picks 3 or 5
  st.map_close_to(2, 0);  // picks the other of 3/5
  const int a = st.slot_of(1);
  const int b = st.slot_of(2);
  EXPECT_TRUE((a == 3 && b == 5) || (a == 5 && b == 3));
}

TEST(MappingState, FirstUnmappedAndResult) {
  const DistanceMatrix d = line_distances(3);
  Rng rng(1);
  MappingState st({0, 1, 2}, d, rng);
  EXPECT_EQ(st.first_unmapped(), 1);
  st.assign(1, 1);
  EXPECT_EQ(st.first_unmapped(), 2);
  EXPECT_THROW(st.result(), Error);  // incomplete
  st.assign(2, 2);
  EXPECT_EQ(st.first_unmapped(), kNoRank);
  EXPECT_EQ(st.result(), (std::vector<int>{0, 1, 2}));
}

TEST(MappingState, RejectsBadInput) {
  const DistanceMatrix d = line_distances(4);
  Rng rng(1);
  EXPECT_THROW(MappingState({0, 0}, d, rng), Error);   // duplicate slot
  EXPECT_THROW(MappingState({0, 9}, d, rng), Error);   // outside matrix
  EXPECT_THROW(MappingState({}, d, rng), Error);       // empty
}

}  // namespace
}  // namespace tarr::mapping
