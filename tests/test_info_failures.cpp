// Tests for the §IV info-key configuration interface, link-failure
// injection in the network substrate, and trace-file loading.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "bench/appmodel.hpp"
#include "common/error.hpp"
#include "core/info.hpp"
#include "topology/fattree.hpp"
#include "topology/routing.hpp"

namespace tarr {
namespace {

using core::InfoConfig;
using core::MapperKind;
using core::parse_info;
using core::parse_info_string;

TEST(InfoKeys, DefaultsWhenEmpty) {
  const InfoConfig info = parse_info({});
  EXPECT_TRUE(info.enabled);
  EXPECT_EQ(info.config.mapper, MapperKind::Heuristic);
  EXPECT_EQ(info.config.fix, collectives::OrderFix::InitComm);
  EXPECT_FALSE(info.config.hierarchical);
}

TEST(InfoKeys, ParsesEveryKey) {
  const InfoConfig info = parse_info({
      {"tarr_reorder", "enabled"},
      {"tarr_mapper", "scotch"},
      {"tarr_order_fix", "endshfl"},
      {"tarr_hierarchical", "true"},
      {"tarr_intra", "linear"},
  });
  EXPECT_TRUE(info.enabled);
  EXPECT_EQ(info.config.mapper, MapperKind::ScotchLike);
  EXPECT_EQ(info.config.fix, collectives::OrderFix::EndShuffle);
  EXPECT_TRUE(info.config.hierarchical);
  EXPECT_EQ(info.config.intra, collectives::IntraAlgo::Linear);
}

TEST(InfoKeys, DisableOverridesMapper) {
  const InfoConfig info = parse_info(
      {{"tarr_mapper", "heuristic"}, {"tarr_reorder", "disabled"}});
  EXPECT_FALSE(info.enabled);
  EXPECT_EQ(info.config.mapper, MapperKind::None);
}

TEST(InfoKeys, CaseAndWhitespaceInsensitive) {
  const InfoConfig info =
      parse_info({{" TARR_Mapper ", " Greedy "}, {"tarr_intra", "BINOMIAL"}});
  EXPECT_EQ(info.config.mapper, MapperKind::GreedyGraph);
}

TEST(InfoKeys, RejectsUnknownKeysAndValues) {
  EXPECT_THROW(parse_info({{"tarr_bogus", "x"}}), Error);
  EXPECT_THROW(parse_info({{"tarr_mapper", "magic"}}), Error);
  EXPECT_THROW(parse_info({{"tarr_reorder", "maybe"}}), Error);
  EXPECT_THROW(parse_info({{"tarr_hierarchical", "1"}}), Error);
}

TEST(InfoKeys, StringFormParses) {
  const InfoConfig info = parse_info_string(
      "tarr_mapper=mvapich-cyclic; tarr_order_fix=initcomm;;");
  EXPECT_EQ(info.config.mapper, MapperKind::MvapichCyclic);
  EXPECT_THROW(parse_info_string("tarr_mapper"), Error);  // no '='
}

TEST(LinkFailure, RoutesAroundDeadUplink) {
  // Kill one of leaf 0's two uplink bundles: routes to other line groups
  // must use the surviving core switch; hop counts are unchanged (there is
  // a parallel path) and all pairs stay connected.
  using namespace topology;
  const SwitchGraph g = build_gpc_network(240);
  // Find a leaf->line link of leaf 0.
  LinkId victim = -1;
  for (int l = 0; l < g.num_links(); ++l) {
    const auto& link = g.link(l);
    if ((g.vertex(link.a).kind == VertexKind::LeafSwitch &&
         g.vertex(link.b).kind == VertexKind::LineSwitch) ||
        (g.vertex(link.b).kind == VertexKind::LeafSwitch &&
         g.vertex(link.a).kind == VertexKind::LineSwitch)) {
      victim = l;
      break;
    }
  }
  ASSERT_NE(victim, -1);
  const SwitchGraph degraded = g.with_failed_links({victim});
  EXPECT_EQ(degraded.num_links(), g.num_links() - 1);
  const Router r(degraded);
  for (NodeId dst = 0; dst < 240; dst += 17) {
    if (dst != 0) {
      EXPECT_GE(r.hops(0, dst), 2);
    }
  }
}

TEST(LinkFailure, DisconnectedHostDetected) {
  using namespace topology;
  const SwitchGraph g = build_single_switch_network(3);
  // Host links are the last three; cutting one isolates that host.
  const SwitchGraph degraded = g.with_failed_links({0});
  EXPECT_THROW(Router{degraded}, Error);
}

TEST(LinkFailure, BadLinkIdRejected) {
  using namespace topology;
  const SwitchGraph g = build_single_switch_network(2);
  EXPECT_THROW(g.with_failed_links({99}), Error);
  EXPECT_THROW(g.with_failed_links({-1}), Error);
}

TEST(TraceFile, RoundtripAndValidation) {
  const std::string path = ::testing::TempDir() + "/tarr_trace.txt";
  {
    std::ofstream out(path);
    out << "# msg calls\n"
        << "1024 100\n"
        << "\n"
        << "65536 7\n";
  }
  const auto trace = bench::load_app_trace(path);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].msg, 1024);
  EXPECT_EQ(trace[0].calls, 100);
  EXPECT_EQ(bench::trace_calls(trace), 107);
  std::remove(path.c_str());

  EXPECT_THROW(bench::load_app_trace("/nonexistent/trace.txt"), Error);
  {
    std::ofstream out(path);
    out << "garbage here\n";
  }
  EXPECT_THROW(bench::load_app_trace(path), Error);
  {
    std::ofstream out(path);
    out << "# only comments\n";
  }
  EXPECT_THROW(bench::load_app_trace(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tarr
