#include "simmpi/communicator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/permutation.hpp"
#include "simmpi/layout.hpp"

namespace tarr::simmpi {
namespace {

using topology::Machine;

TEST(Communicator, BasicLookups) {
  const Machine m = Machine::gpc(2);
  const Communicator c(m, make_layout(m, 16, LayoutSpec{}));
  EXPECT_EQ(c.size(), 16);
  EXPECT_EQ(c.core_of(0), 0);
  EXPECT_EQ(c.node_of(8), 1);
  EXPECT_EQ(c.socket_of(4), 1);
  EXPECT_EQ(c.rank_on_core(3), 3);
}

TEST(Communicator, RankOnUnusedCoreIsNoRank) {
  const Machine m = Machine::gpc(2);
  const Communicator c(m, {0, 2, 4});
  EXPECT_EQ(c.rank_on_core(0), 0);
  EXPECT_EQ(c.rank_on_core(1), kNoRank);
  EXPECT_EQ(c.rank_on_core(4), 2);
}

TEST(Communicator, RejectsDuplicateCores) {
  const Machine m = Machine::gpc(1);
  EXPECT_THROW(Communicator(m, {0, 0}), Error);
  EXPECT_THROW(Communicator(m, {0, 99}), Error);
  EXPECT_THROW(Communicator(m, {}), Error);
}

TEST(Communicator, ReorderedKeepsCoreSet) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, {0, 1, 2, 3});
  const Communicator r = c.reordered({3, 1, 0, 2});
  EXPECT_EQ(r.core_of(0), 3);
  EXPECT_THROW(c.reordered({0, 1, 2, 4}), Error);
  EXPECT_THROW(c.reordered({0, 1, 2}), Error);
}

TEST(Communicator, PermutationToReordered) {
  const Machine m = Machine::gpc(1);
  const Communicator c(m, {0, 1, 2, 3});
  const Communicator r = c.reordered({3, 1, 0, 2});
  // Process on core 0 had rank 0, now has rank 2 (r.core_of(2) == 0).
  const auto perm = c.permutation_to(r);
  EXPECT_EQ(perm, (std::vector<Rank>{2, 1, 3, 0}));
  EXPECT_TRUE(is_permutation_of_iota(perm));
  // Consistency: r.core_of(perm[old]) == c.core_of(old).
  for (Rank old = 0; old < 4; ++old)
    EXPECT_EQ(r.core_of(perm[old]), c.core_of(old));
}

TEST(Communicator, NodeContiguity) {
  const Machine m = Machine::gpc(2);
  const Communicator block(
      m, make_layout(m, 16, LayoutSpec{NodeOrder::Block, SocketOrder::Bunch}));
  EXPECT_TRUE(block.node_contiguous());
  const Communicator cyclic(
      m,
      make_layout(m, 16, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Bunch}));
  EXPECT_FALSE(cyclic.node_contiguous());
  // Partial node occupancy is not node-contiguous either.
  const Communicator partial(m, {0, 1, 2});
  EXPECT_FALSE(partial.node_contiguous());
}

TEST(Communicator, NodeContiguityAfterIntraNodePermute) {
  const Machine m = Machine::gpc(2);
  // Block layout with sockets scattered is still node-contiguous.
  const Communicator c(
      m,
      make_layout(m, 16, LayoutSpec{NodeOrder::Block, SocketOrder::Scatter}));
  EXPECT_TRUE(c.node_contiguous());
}

TEST(Communicator, RanksByNode) {
  const Machine m = Machine::gpc(2);
  const Communicator cyclic(
      m,
      make_layout(m, 16, LayoutSpec{NodeOrder::Cyclic, SocketOrder::Bunch}));
  const auto groups = cyclic.ranks_by_node();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<Rank>{0, 2, 4, 6, 8, 10, 12, 14}));
  EXPECT_EQ(groups[1], (std::vector<Rank>{1, 3, 5, 7, 9, 11, 13, 15}));
}

}  // namespace
}  // namespace tarr::simmpi
