// Shape-regression tests: the qualitative results of the paper's figures,
// pinned at a reduced scale (64 nodes, 512 processes) so the full suite
// stays fast.  If a model or heuristic change breaks one of these, the
// corresponding figure reproduction has regressed.

#include <gtest/gtest.h>

#include "bench/sweep.hpp"
#include "core/topoallgather.hpp"
#include "simmpi/layout.hpp"

namespace tarr {
namespace {

using bench::improvement_percent;
using collectives::IntraAlgo;
using collectives::OrderFix;
using core::MapperKind;
using core::ReorderFramework;
using core::TopoAllgather;
using core::TopoAllgatherConfig;
using simmpi::LayoutSpec;
using simmpi::NodeOrder;
using simmpi::SocketOrder;
using topology::Machine;

class Shapes : public ::testing::Test {
 protected:
  Shapes() : machine_(Machine::gpc(64)), framework_(machine_) {}

  TopoAllgather path(const LayoutSpec& spec, MapperKind kind,
                     OrderFix fix = OrderFix::InitComm,
                     bool hier = false,
                     IntraAlgo intra = IntraAlgo::Binomial) {
    TopoAllgatherConfig cfg;
    cfg.mapper = kind;
    cfg.fix = fix;
    cfg.hierarchical = hier;
    cfg.intra = intra;
    return TopoAllgather(
        framework_,
        simmpi::Communicator(machine_,
                             simmpi::make_layout(machine_, 512, spec)),
        cfg);
  }

  double improvement(TopoAllgather& base, TopoAllgather& variant,
                     Bytes msg) {
    return improvement_percent(base.latency(msg), variant.latency(msg));
  }

  static constexpr LayoutSpec kBlockBunch{NodeOrder::Block,
                                          SocketOrder::Bunch};
  static constexpr LayoutSpec kBlockScatter{NodeOrder::Block,
                                            SocketOrder::Scatter};
  static constexpr LayoutSpec kCyclicBunch{NodeOrder::Cyclic,
                                           SocketOrder::Bunch};
  static constexpr Bytes kSmall = 1024;        // recursive-doubling regime
  static constexpr Bytes kLarge = 128 * 1024;  // ring regime

  Machine machine_;
  ReorderFramework framework_;
};

TEST_F(Shapes, Fig3a_RdmhGainsGrowWithSizeOnBlockBunch) {
  auto base = path(kBlockBunch, MapperKind::None);
  auto h = path(kBlockBunch, MapperKind::Heuristic);
  const double small = improvement(base, h, 256);
  const double mid = improvement(base, h, 8 * 1024);
  EXPECT_GT(small, 20.0);
  EXPECT_GT(mid, small);  // improvement increases with message size
  EXPECT_GT(mid, 50.0);   // the paper's "up to ~67%" band
  EXPECT_LT(mid, 85.0);
}

TEST_F(Shapes, Fig3a_RingOnBlockBunchDoesNotDegrade) {
  auto base = path(kBlockBunch, MapperKind::None);
  auto h = path(kBlockBunch, MapperKind::Heuristic);
  EXPECT_NEAR(improvement(base, h, kLarge), 0.0, 0.5);
}

TEST_F(Shapes, Fig3c_RingOnCyclicGainsLarge) {
  auto base = path(kCyclicBunch, MapperKind::None);
  auto h = path(kCyclicBunch, MapperKind::Heuristic);
  const double impr = improvement(base, h, kLarge);
  EXPECT_GT(impr, 60.0);  // the paper's "up to 78%" band
  EXPECT_LT(impr, 95.0);
}

TEST_F(Shapes, Fig3_ScotchDegradesFlatRd) {
  auto base = path(kBlockBunch, MapperKind::None);
  auto s = path(kBlockBunch, MapperKind::ScotchLike);
  EXPECT_LT(improvement(base, s, kSmall), -50.0);
}

TEST_F(Shapes, Fig3_InitCommBeatsEndShuffle) {
  auto base = path(kCyclicBunch, MapperKind::None);
  auto ic = path(kCyclicBunch, MapperKind::Heuristic, OrderFix::InitComm);
  auto es = path(kCyclicBunch, MapperKind::Heuristic, OrderFix::EndShuffle);
  EXPECT_GT(improvement(base, ic, kSmall), improvement(base, es, kSmall));
}

TEST_F(Shapes, Fig4a_HierBlockBunchLargeIsNeutral) {
  auto base = path(kBlockBunch, MapperKind::None, OrderFix::InitComm, true);
  auto h = path(kBlockBunch, MapperKind::Heuristic, OrderFix::InitComm, true);
  EXPECT_NEAR(improvement(base, h, kLarge), 0.0, 3.0);
}

TEST_F(Shapes, Fig4b_HierBlockScatterLargeGains) {
  auto base = path(kBlockScatter, MapperKind::None, OrderFix::InitComm, true);
  auto h =
      path(kBlockScatter, MapperKind::Heuristic, OrderFix::InitComm, true);
  EXPECT_GT(improvement(base, h, kLarge), 2.0);  // paper: ~3%
}

TEST_F(Shapes, Fig4cd_HierLinearLargeIsNeutral) {
  auto base = path(kBlockBunch, MapperKind::None, OrderFix::InitComm, true,
                   IntraAlgo::Linear);
  auto h = path(kBlockBunch, MapperKind::Heuristic, OrderFix::InitComm, true,
                IntraAlgo::Linear);
  EXPECT_NEAR(improvement(base, h, kLarge), 0.0, 3.0);
}

TEST_F(Shapes, Fig4_HierGainsLowerThanFlatForSmall) {
  auto flat_base = path(kBlockBunch, MapperKind::None);
  auto flat_h = path(kBlockBunch, MapperKind::Heuristic);
  auto hier_base =
      path(kBlockBunch, MapperKind::None, OrderFix::InitComm, true);
  auto hier_h =
      path(kBlockBunch, MapperKind::Heuristic, OrderFix::InitComm, true);
  EXPECT_LE(improvement(hier_base, hier_h, kSmall),
            improvement(flat_base, flat_h, kSmall) + 1.0);
}

TEST_F(Shapes, Fig7_HeuristicsNotSlowerThanScotchLike) {
  auto h = path(kBlockBunch, MapperKind::Heuristic);
  auto s = path(kBlockBunch, MapperKind::ScotchLike);
  h.latency(kSmall);
  s.latency(kSmall);
  // Same order of magnitude at worst; the graph mapper must not be cheaper
  // by more than ~2x (it has to build and partition the pattern graph).
  EXPECT_LT(h.mapping_seconds(), 2.0 * s.mapping_seconds() + 1e-3);
}

}  // namespace
}  // namespace tarr
