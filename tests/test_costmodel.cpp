#include "simmpi/costmodel.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace tarr::simmpi {
namespace {

using topology::Machine;

Usec one_transfer(CostModel& cm, CoreId a, CoreId b, Bytes bytes) {
  cm.begin_stage();
  cm.add_transfer(a, b, bytes);
  return cm.finish_stage();
}

TEST(CostModel, ChannelLatencyOrdering) {
  // Zero-byte transfers expose pure channel latencies:
  // same-socket < cross-socket < inter-node.
  const Machine m = Machine::gpc(2);
  CostModel cm(m, CostConfig{});
  const Usec same = one_transfer(cm, 0, 1, 0);
  const Usec cross = one_transfer(cm, 0, 4, 0);
  const Usec inter = one_transfer(cm, 0, 8, 0);
  EXPECT_LT(same, cross);
  EXPECT_LT(cross, inter);
}

TEST(CostModel, CostGrowsWithSize) {
  const Machine m = Machine::gpc(2);
  CostModel cm(m, CostConfig{});
  for (CoreId dst : {1, 4, 8}) {
    Usec prev = one_transfer(cm, 0, dst, 1);
    for (Bytes b : {1024, 65536, 1 << 20}) {
      const Usec t = one_transfer(cm, 0, dst, b);
      EXPECT_GT(t, prev);
      prev = t;
    }
  }
}

TEST(CostModel, NetworkCostGrowsWithHops) {
  const Machine m = Machine::gpc(240);  // several leaves and line groups
  CostModel cm(m, CostConfig{});
  const int cpn = m.cores_per_node();
  const Usec same_leaf = one_transfer(cm, 0, 1 * cpn, 4096);
  const Usec same_line = one_transfer(cm, 0, 30 * cpn, 4096);
  const Usec cross_line = one_transfer(cm, 0, 180 * cpn, 4096);
  EXPECT_LT(same_leaf, same_line);
  EXPECT_LT(same_line, cross_line);
}

TEST(CostModel, LinkContentionSlowsTransfers) {
  // Many nodes of one leaf all sending to another leaf saturate the 6
  // shared uplink cables; a lone transfer does not.
  const Machine m = Machine::gpc(60);
  CostModel cm(m, CostConfig{});
  const int cpn = m.cores_per_node();
  const Bytes b = 1 << 20;

  const Usec lone = one_transfer(cm, 0, 30 * cpn, b);

  cm.begin_stage();
  for (int n = 0; n < 30; ++n)
    cm.add_transfer(m.core_id(n, 0), m.core_id(30 + n, 0), b);
  const Usec contended = cm.finish_stage();
  EXPECT_GT(contended, 2.0 * lone);
}

TEST(CostModel, HostLinkSerializesNodeTraffic) {
  // All 8 ranks of one node sending off-node share the single host link.
  const Machine m = Machine::gpc(2);
  CostModel cm(m, CostConfig{});
  const Bytes b = 1 << 20;
  const Usec lone = one_transfer(cm, 0, 8, b);
  cm.begin_stage();
  for (int k = 0; k < 8; ++k) cm.add_transfer(k, 8 + k, b);
  const Usec eight = cm.finish_stage();
  EXPECT_GT(eight, 7.0 * lone - 1.0);
}

TEST(CostModel, QpiContentionOnlyAcrossSockets) {
  const Machine m = Machine::gpc(1);
  CostConfig cfg;
  CostModel cm(m, cfg);
  const Bytes b = 1 << 22;
  // Four concurrent cross-socket transfers, same direction.
  cm.begin_stage();
  for (int k = 0; k < 4; ++k) cm.add_transfer(k, 4 + k, b);
  const Usec cross4 = cm.finish_stage();
  const Usec cross1 = one_transfer(cm, 0, 4, b);
  EXPECT_GT(cross4, 2.0 * cross1);
}

TEST(CostModel, SocketMemoryContention) {
  const Machine m = Machine::gpc(1);
  CostModel cm(m, CostConfig{});
  const Bytes b = 1 << 22;
  const Usec one = one_transfer(cm, 0, 1, b);
  cm.begin_stage();
  cm.add_transfer(0, 1, b);
  cm.add_transfer(2, 3, b);  // same socket pair
  const Usec two = cm.finish_stage();
  EXPECT_GT(two, 1.5 * one);
}

TEST(CostModel, IsolatedCrossAndSameSocketComparable) {
  // Large isolated copies are memory-bound on the paper's machine: the
  // bandwidth term must match within the latency difference.
  const Machine m = Machine::gpc(1);
  CostConfig cfg;
  CostModel cm(m, cfg);
  const Bytes b = 1 << 22;
  const Usec same = one_transfer(cm, 0, 1, b);
  const Usec cross = one_transfer(cm, 0, 4, b);
  EXPECT_NEAR(same - cfg.alpha_shm_socket, cross - cfg.alpha_shm_cross,
              1e-9);
}

TEST(CostModel, NoContentionModeIgnoresSharing) {
  const Machine m = Machine::gpc(60);
  CostConfig cfg;
  cfg.model_contention = false;
  CostModel cm(m, cfg);
  const int cpn = m.cores_per_node();
  const Bytes b = 1 << 20;
  const Usec lone = one_transfer(cm, 0, 30 * cpn, b);
  cm.begin_stage();
  for (int n = 0; n < 30; ++n)
    cm.add_transfer(m.core_id(n, 0), m.core_id(30 + n, 0), b);
  const Usec many = cm.finish_stage();
  EXPECT_NEAR(many, lone, lone * 0.05);
}

TEST(CostModel, StateResetsBetweenStages) {
  const Machine m = Machine::gpc(2);
  CostModel cm(m, CostConfig{});
  const Bytes b = 1 << 20;
  cm.begin_stage();
  for (int k = 0; k < 8; ++k) cm.add_transfer(k, 8 + k, b);
  cm.finish_stage();
  // A fresh stage must not see the previous loads.
  const Usec lone_after = one_transfer(cm, 0, 8, b);
  CostModel fresh(m, CostConfig{});
  EXPECT_DOUBLE_EQ(lone_after, one_transfer(fresh, 0, 8, b));
}

TEST(CostModel, LocalCopyCost) {
  const Machine m = Machine::gpc(1);
  CostConfig cfg;
  CostModel cm(m, cfg);
  EXPECT_EQ(cm.local_copy_cost(0), 0.0);
  EXPECT_DOUBLE_EQ(cm.local_copy_cost(6500),
                   cfg.alpha_mem + 6500 * cfg.beta_mem);
}

TEST(CostModel, DetailCaptureOffByDefaultAndCostNeutral) {
  const Machine m = Machine::gpc(2);
  CostModel plain(m, CostConfig{});
  CostModel detailed(m, CostConfig{});
  detailed.set_capture_details(true);
  EXPECT_FALSE(plain.capture_details());

  const Bytes b = 1 << 16;
  const Usec t_plain = one_transfer(plain, 0, 8, b);
  const Usec t_detail = one_transfer(detailed, 0, 8, b);
  EXPECT_EQ(t_plain, t_detail);  // capture must not perturb pricing

  EXPECT_TRUE(plain.last_stage_detail().transfers.empty());
  EXPECT_TRUE(plain.last_stage_detail().link_loads.empty());
  ASSERT_EQ(detailed.last_stage_detail().transfers.size(), 1u);
  EXPECT_FALSE(detailed.last_stage_detail().link_loads.empty());
}

TEST(CostModel, DetailRecordsChannelsAndCosts) {
  const Machine m = Machine::gpc(2);
  CostModel cm(m, CostConfig{});
  cm.set_capture_details(true);
  const int cpn = m.cores_per_node();
  const Bytes b = 1 << 16;

  cm.begin_stage();
  cm.add_transfer(0, 1, b);        // same socket
  cm.add_transfer(0, cpn / 2, b);  // cross socket (second complex)
  cm.add_transfer(0, cpn, b);      // network (second node)
  const Usec stage = cm.finish_stage();

  const auto& d = cm.last_stage_detail();
  ASSERT_EQ(d.transfers.size(), 3u);
  // Submission order is preserved.
  EXPECT_EQ(d.transfers[0].dst, 1);
  EXPECT_EQ(d.transfers[1].dst, cpn / 2);
  EXPECT_EQ(d.transfers[2].dst, cpn);
  EXPECT_NE(d.transfers[0].channel, trace::Channel::Network);
  EXPECT_EQ(d.transfers[2].channel, trace::Channel::Network);
  for (const auto& tr : d.transfers) {
    EXPECT_EQ(tr.src, 0);
    EXPECT_EQ(tr.bytes, b);
    EXPECT_GT(tr.cost, 0.0);
    EXPECT_LE(tr.cost, stage + 1e-9);  // stage = max over transfers
    EXPECT_GE(tr.contention, 1.0 - 1e-12);
  }
  // The network transfer loaded at least one directed cable, with a sane
  // relative (bytes/capacity) heat.
  ASSERT_FALSE(d.link_loads.empty());
  for (const auto& l : d.link_loads) {
    EXPECT_GT(l.bytes, 0.0);
    EXPECT_GT(l.relative, 0.0);
    EXPECT_TRUE(l.dir == 0 || l.dir == 1);
  }
}

TEST(CostModel, DetailContentionReflectsOversubscription) {
  // Many flows over one uplink: the shared-cable slowdown must show up as
  // contention > 1 on the recorded network transfers.
  const Machine m = Machine::gpc(60);
  CostModel cm(m, CostConfig{});
  cm.set_capture_details(true);
  const int cpn = m.cores_per_node();
  const Bytes b = 1 << 20;

  cm.begin_stage();
  for (int k = 0; k < cpn; ++k)
    cm.add_transfer(m.core_id(0, k), m.core_id(30, k), b);
  cm.finish_stage();

  const auto& d = cm.last_stage_detail();
  ASSERT_EQ(d.transfers.size(), static_cast<std::size_t>(cpn));
  double max_contention = 0.0;
  for (const auto& tr : d.transfers)
    max_contention = std::max(max_contention, tr.contention);
  EXPECT_GT(max_contention, 1.0);
}

TEST(CostModel, DetailResetsEachStage) {
  const Machine m = Machine::gpc(2);
  CostModel cm(m, CostConfig{});
  cm.set_capture_details(true);
  one_transfer(cm, 0, 8, 4096);
  EXPECT_EQ(cm.last_stage_detail().transfers.size(), 1u);
  cm.begin_stage();
  cm.add_transfer(0, 1, 64);
  cm.add_transfer(2, 3, 64);
  cm.finish_stage();
  EXPECT_EQ(cm.last_stage_detail().transfers.size(), 2u);
  // Intra-node stage: no cables touched.
  EXPECT_TRUE(cm.last_stage_detail().link_loads.empty());
}

TEST(CostModel, ApiMisuseThrows) {
  const Machine m = Machine::gpc(1);
  CostModel cm(m, CostConfig{});
  EXPECT_THROW(cm.add_transfer(0, 1, 8), Error);   // no open stage
  EXPECT_THROW(cm.finish_stage(), Error);          // no open stage
  cm.begin_stage();
  EXPECT_THROW(cm.begin_stage(), Error);           // double open
  EXPECT_THROW(cm.add_transfer(0, 0, 8), Error);   // self transfer
  EXPECT_THROW(cm.add_transfer(0, 1, -1), Error);  // negative size
  cm.finish_stage();
}

}  // namespace
}  // namespace tarr::simmpi
