// tarr::cli: the shared strict argument parsers behind every tarr-* CLI.
// One contract everywhere: the full token must parse, the value must land
// in range, and any violation throws UsageError (surfaced by the CLIs as
// usage text + exit 2).

#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace tarr::cli {
namespace {

TEST(Cli, ParseIntAcceptsWholeTokenInRange) {
  EXPECT_EQ(parse_int("--n", "0", 0, 10), 0);
  EXPECT_EQ(parse_int("--n", "10", 0, 10), 10);
  EXPECT_EQ(parse_int("--n", "-3", -5, 5), -3);
  EXPECT_EQ(parse_int("--n", "9223372036854775807",
                      std::numeric_limits<long long>::min(),
                      std::numeric_limits<long long>::max()),
            std::numeric_limits<long long>::max());
}

TEST(Cli, ParseIntRejectsMalformedTokens) {
  // Trailing garbage, empty, non-numeric, embedded whitespace: all the shapes
  // that strtol would silently half-accept.
  EXPECT_THROW(parse_int("--n", "8x", 0, 100), UsageError);
  EXPECT_THROW(parse_int("--n", "", 0, 100), UsageError);
  EXPECT_THROW(parse_int("--n", "x8", 0, 100), UsageError);
  EXPECT_THROW(parse_int("--n", "1 2", 0, 100), UsageError);
  EXPECT_THROW(parse_int("--n", "1.5", 0, 100), UsageError);
  EXPECT_THROW(parse_int("--n", " 1", 0, 100), UsageError);
}

TEST(Cli, ParseIntRejectsOutOfRangeAndOverflow) {
  EXPECT_THROW(parse_int("--n", "11", 0, 10), UsageError);
  EXPECT_THROW(parse_int("--n", "-1", 0, 10), UsageError);
  // Past the 64-bit boundary entirely (errno == ERANGE path).
  EXPECT_THROW(parse_int("--n", "99999999999999999999",
                         std::numeric_limits<long long>::min(),
                         std::numeric_limits<long long>::max()),
               UsageError);
}

TEST(Cli, ParseIntErrorNamesTheOption) {
  try {
    parse_int("--nodes", "8x", 0, 100);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("--nodes"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("8x"), std::string::npos);
  }
}

TEST(Cli, ParseDoubleAcceptsWholeTokenInRange) {
  EXPECT_DOUBLE_EQ(parse_double("--x", "0.25", 0.0, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(parse_double("--x", "1", 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(parse_double("--x", "-2.5e-1", -1.0, 1.0), -0.25);
}

TEST(Cli, ParseDoubleRejectsMalformedOutOfRangeAndNan) {
  EXPECT_THROW(parse_double("--x", "0.5z", 0.0, 1.0), UsageError);
  EXPECT_THROW(parse_double("--x", "", 0.0, 1.0), UsageError);
  EXPECT_THROW(parse_double("--x", "1.5", 0.0, 1.0), UsageError);
  EXPECT_THROW(parse_double("--x", "-0.1", 0.0, 1.0), UsageError);
  // NaN passes strtod and every naive range check (NaN < lo is false); the
  // parser must reject it explicitly.
  EXPECT_THROW(parse_double("--x", "nan", 0.0, 1.0), UsageError);
  EXPECT_THROW(parse_double("--x", "NAN", 0.0, 1.0), UsageError);
}

TEST(Cli, ParseSeedCoversTheFullUnsignedRange) {
  EXPECT_EQ(parse_seed("--seed", "0"), 0u);
  EXPECT_EQ(parse_seed("--seed", "18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Cli, ParseSeedRejectsNegativeAndMalformed) {
  // strtoull silently wraps negatives ("-1" -> 2^64-1); the parser must not.
  EXPECT_THROW(parse_seed("--seed", "-1"), UsageError);
  EXPECT_THROW(parse_seed("--seed", "12x"), UsageError);
  EXPECT_THROW(parse_seed("--seed", ""), UsageError);
  EXPECT_THROW(parse_seed("--seed", "18446744073709551616"), UsageError);
}

TEST(Cli, UsageErrorIsATarrError) {
  // CLIs catch UsageError before Error; the hierarchy must support that.
  try {
    throw UsageError("boom");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

}  // namespace
}  // namespace tarr::cli
