#include "core/refine.hpp"

#include <gtest/gtest.h>

#include "common/permutation.hpp"
#include "simmpi/layout.hpp"

namespace tarr::core {
namespace {

using collectives::AllgatherAlgo;
using collectives::OrderFix;
using simmpi::Communicator;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

ReorderedComm identity_start(const Communicator& comm) {
  return ReorderedComm{comm, identity_permutation(comm.size()), 0.0};
}

TEST(Refine, NeverWorsensTheStart) {
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, LayoutSpec{}));
  const auto objective = allgather_objective(AllgatherAlgo::Ring, 64 * 1024,
                                             OrderFix::None,
                                             simmpi::CostConfig{});
  RefineOptions opts;
  opts.max_swaps = 60;
  const RefineResult res =
      refine_by_simulation(comm, identity_start(comm), objective, opts);
  EXPECT_LE(res.final_objective, res.start_objective);
  EXPECT_EQ(res.evaluations, 61);
  // The returned mapping reproduces the reported objective.
  EXPECT_NEAR(objective(res.mapping.comm, res.mapping.oldrank),
              res.final_objective, 1e-9);
}

TEST(Refine, ImprovesADeliberatelyBadStart) {
  // Cyclic placement + ring: plenty of profitable swaps exist.
  const Machine m = Machine::gpc(2);
  const Communicator comm(
      m, make_layout(m, 16,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Bunch}));
  const auto objective = allgather_objective(AllgatherAlgo::Ring, 64 * 1024,
                                             OrderFix::None,
                                             simmpi::CostConfig{});
  RefineOptions opts;
  opts.max_swaps = 400;
  opts.seed = 3;
  const RefineResult res =
      refine_by_simulation(comm, identity_start(comm), objective, opts);
  EXPECT_LT(res.final_objective, res.start_objective);
  EXPECT_GT(res.accepted_swaps, 0);
}

TEST(Refine, OldrankStaysConsistentWithCores) {
  // Invariant: the process on a core keeps its original identity; swaps
  // must permute cores and oldrank together.
  const Machine m = Machine::gpc(2);
  const Communicator comm(
      m, make_layout(m, 16,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Scatter}));
  const auto objective = allgather_objective(AllgatherAlgo::Ring, 4096,
                                             OrderFix::None,
                                             simmpi::CostConfig{});
  RefineOptions opts;
  opts.max_swaps = 100;
  const RefineResult res =
      refine_by_simulation(comm, identity_start(comm), objective, opts);
  for (Rank j = 0; j < comm.size(); ++j) {
    EXPECT_EQ(res.mapping.comm.core_of(j),
              comm.core_of(res.mapping.oldrank[j]));
  }
  EXPECT_TRUE(is_permutation_of_iota(res.mapping.oldrank));
}

TEST(Refine, ZeroBudgetReturnsStart) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 8, LayoutSpec{}));
  const auto objective = allgather_objective(
      AllgatherAlgo::RecursiveDoubling, 1024, OrderFix::None,
      simmpi::CostConfig{});
  RefineOptions opts;
  opts.max_swaps = 0;
  const RefineResult res =
      refine_by_simulation(comm, identity_start(comm), objective, opts);
  EXPECT_EQ(res.accepted_swaps, 0);
  EXPECT_EQ(res.mapping.comm.rank_to_core(), comm.rank_to_core());
}

TEST(Refine, PolishesHeuristicOutput) {
  // Starting from RMH (already good), refinement must hold or improve it.
  const Machine m = Machine::gpc(4);
  ReorderFramework fw(m);
  const Communicator comm(
      m, make_layout(m, 32,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Bunch}));
  const auto start = fw.reorder(comm, mapping::Pattern::Ring);
  const auto objective = allgather_objective(AllgatherAlgo::Ring, 64 * 1024,
                                             OrderFix::None,
                                             simmpi::CostConfig{});
  RefineOptions opts;
  opts.max_swaps = 100;
  const RefineResult res =
      refine_by_simulation(comm, start, objective, opts);
  EXPECT_LE(res.final_objective, res.start_objective * 1.0001);
}

}  // namespace
}  // namespace tarr::core
