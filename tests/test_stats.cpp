#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace tarr {
namespace {

TEST(StatAccumulator, EmptyIsZero) {
  StatAccumulator s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatAccumulator, SingleSample) {
  StatAccumulator s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatAccumulator, KnownMoments) {
  StatAccumulator s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StatAccumulator, NegativeValues) {
  StatAccumulator s;
  s.add(-2.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

TEST(StatAccumulator, MergeEmptyIsIdentityBothWays) {
  StatAccumulator filled;
  for (double x : {1.0, 2.0, 6.0}) filled.add(x);
  const double mean = filled.mean();
  const double var = filled.variance();

  StatAccumulator empty;
  filled.merge(empty);  // merging an empty accumulator changes nothing
  EXPECT_EQ(filled.count(), 3);
  EXPECT_DOUBLE_EQ(filled.mean(), mean);
  EXPECT_DOUBLE_EQ(filled.variance(), var);

  StatAccumulator target;
  target.merge(filled);  // merging INTO an empty one adopts exactly
  EXPECT_EQ(target.count(), 3);
  EXPECT_DOUBLE_EQ(target.mean(), mean);
  EXPECT_DOUBLE_EQ(target.variance(), var);
  EXPECT_DOUBLE_EQ(target.min(), 1.0);
  EXPECT_DOUBLE_EQ(target.max(), 6.0);

  StatAccumulator both;
  both.merge(StatAccumulator{});  // empty + empty stays empty
  EXPECT_EQ(both.count(), 0);
  EXPECT_DOUBLE_EQ(both.mean(), 0.0);
}

TEST(StatAccumulator, MergeMatchesBatchAccumulation) {
  StatAccumulator a, b, batch;
  for (int i = 0; i < 40; ++i) {
    const double x = 0.1 * i * i - 3.0 * i + 7.0;
    (i % 3 == 0 ? a : b).add(x);
    batch.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), batch.count());
  EXPECT_NEAR(a.mean(), batch.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), batch.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), batch.min());
  EXPECT_DOUBLE_EQ(a.max(), batch.max());
}

TEST(StatAccumulator, MergeIsCommutative) {
  StatAccumulator a1, b1;
  for (double x : {2.0, 4.0, 9.0}) a1.add(x);
  for (double x : {-1.0, 5.0}) b1.add(x);
  StatAccumulator a2 = a1, b2 = b1;

  a1.merge(b1);  // a+b
  b2.merge(a2);  // b+a
  EXPECT_EQ(a1.count(), b2.count());
  EXPECT_NEAR(a1.mean(), b2.mean(), 1e-12);
  EXPECT_NEAR(a1.variance(), b2.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a1.min(), b2.min());
  EXPECT_DOUBLE_EQ(a1.max(), b2.max());
}

TEST(StatAccumulator, SelfMergeDoublesEverySample) {
  StatAccumulator s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  StatAccumulator twice;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    twice.add(x);
    twice.add(x);
  }
  s.merge(s);  // aliasing must be safe
  EXPECT_EQ(s.count(), 16);
  EXPECT_NEAR(s.mean(), twice.mean(), 1e-12);
  EXPECT_NEAR(s.variance(), twice.variance(), 1e-9);
}

TEST(StatAccumulator, StreamingMatchesBatchMean) {
  StatAccumulator s;
  double sum = 0;
  for (int i = 1; i <= 1000; ++i) {
    s.add(static_cast<double>(i));
    sum += i;
  }
  EXPECT_NEAR(s.mean(), sum / 1000.0, 1e-9);
  EXPECT_EQ(s.count(), 1000);
}

}  // namespace
}  // namespace tarr
