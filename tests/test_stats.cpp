#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace tarr {
namespace {

TEST(StatAccumulator, EmptyIsZero) {
  StatAccumulator s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatAccumulator, SingleSample) {
  StatAccumulator s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatAccumulator, KnownMoments) {
  StatAccumulator s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StatAccumulator, NegativeValues) {
  StatAccumulator s;
  s.add(-2.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

TEST(StatAccumulator, StreamingMatchesBatchMean) {
  StatAccumulator s;
  double sum = 0;
  for (int i = 1; i <= 1000; ++i) {
    s.add(static_cast<double>(i));
    sum += i;
  }
  EXPECT_NEAR(s.mean(), sum / 1000.0, 1e-9);
  EXPECT_EQ(s.count(), 1000);
}

}  // namespace
}  // namespace tarr
