// tarr::trace: timeline JSON well-formedness, span nesting, mode parity,
// byte-reproducibility, and the zero-perturbation guarantee of the
// disabled/enabled trace paths.

#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "collectives/allgather.hpp"
#include "collectives/hierarchical.hpp"
#include "common/permutation.hpp"
#include "core/framework.hpp"
#include "core/topoallgather.hpp"
#include "fault/shrink.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"
#include "simmpi/transient.hpp"

namespace tarr::trace {
namespace {

using simmpi::Communicator;
using simmpi::CostConfig;
using simmpi::Engine;
using simmpi::ExecMode;
using simmpi::make_layout;
using topology::Machine;

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator (objects, arrays, strings, numbers, literals)
// so the well-formedness test needs no external parser.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Helpers.

/// Allgather over a reordered communicator with the sink attached to
/// framework and engine; returns the tracer-visible run.
Usec traced_allgather(
    int nodes, int p, ExecMode mode, TraceSink* sink,
    core::ReorderFramework::Options fw_opts = {},
    collectives::AllgatherAlgo algo = collectives::AllgatherAlgo::Ring) {
  const Machine m = Machine::gpc(nodes);
  const Communicator comm(m, make_layout(m, p, {}));
  core::ReorderFramework fw(m, fw_opts);
  fw.set_trace_sink(sink);
  const auto rc = fw.reorder(comm, algo == collectives::AllgatherAlgo::Ring
                                       ? mapping::Pattern::Ring
                                       : mapping::Pattern::RecursiveDoubling);
  Engine eng(rc.comm, CostConfig{}, mode, /*block=*/256, p);
  eng.set_trace_sink(sink);
  return collectives::run_allgather(eng, {algo, collectives::OrderFix::None},
                                    rc.oldrank);
}

/// The metrics CSV minus the "wall.*" counter rows: those carry real
/// measured seconds by design and are the one part of the registry that is
/// not reproducible across runs.
std::string strip_wall_rows(const std::string& csv) {
  std::string out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t nl = csv.find('\n', pos);
    if (nl == std::string::npos) nl = csv.size() - 1;
    const std::string line = csv.substr(pos, nl + 1 - pos);
    if (line.find("counter,wall.") == std::string::npos) out += line;
    pos = nl + 1;
  }
  return out;
}

// ---------------------------------------------------------------------------

TEST(Trace, TimelineJsonIsSyntacticallyValid) {
  Tracer tracer;
  traced_allgather(2, 16, ExecMode::Timed, &tracer);
  const std::string json = tracer.timeline_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  // The three processes of the track layout are all present.
  EXPECT_NE(json.find("\"simulation\""), std::string::npos);
  EXPECT_NE(json.find("\"network load\""), std::string::npos);
  EXPECT_NE(json.find("\"mapping (wall clock)\""), std::string::npos);
  // Counter samples for at least one directed cable made it in.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("cable "), std::string::npos);
}

TEST(Trace, SpanNestingIsWellFormedPerTrack) {
  Tracer tracer;
  traced_allgather(2, 16, ExecMode::Timed, &tracer);
  ASSERT_FALSE(tracer.spans().empty());

  std::map<std::pair<int, int>, std::vector<const TimelineSpan*>> tracks;
  for (const auto& s : tracer.spans())
    tracks[{s.pid, s.tid}].push_back(&s);

  const double eps = 1e-9;
  for (const auto& [track, spans] : tracks) {
    for (std::size_t i = 0; i < spans.size(); ++i) {
      for (std::size_t j = i + 1; j < spans.size(); ++j) {
        const auto& a = *spans[i];
        const auto& b = *spans[j];
        const double a_end = a.ts + a.dur;
        const double b_end = b.ts + b.dur;
        const bool disjoint =
            b.ts >= a_end - eps || a.ts >= b_end - eps;
        const bool a_in_b = a.ts >= b.ts - eps && a_end <= b_end + eps;
        const bool b_in_a = b.ts >= a.ts - eps && b_end <= a_end + eps;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "partial overlap on track (" << track.first << ","
            << track.second << "): [" << a.name << " " << a.ts << "+" << a.dur
            << "] vs [" << b.name << " " << b.ts << "+" << b.dur << "]";
      }
    }
  }
}

TEST(Trace, TimedAndDataModesProduceIdenticalTimelines) {
  // Recursive doubling executes the same stage schedule in both modes (the
  // ring instead compresses its identical stages with repeat_last_stage,
  // which is Timed-only by design).
  Tracer timed, data;
  const auto rd = collectives::AllgatherAlgo::RecursiveDoubling;
  traced_allgather(2, 16, ExecMode::Timed, &timed, {}, rd);
  traced_allgather(2, 16, ExecMode::Data, &data, {}, rd);
  EXPECT_EQ(timed.timeline_json(), data.timeline_json());
}

TEST(Trace, SameSeedRunsAreByteIdentical) {
  core::ReorderFramework::Options opts;
  opts.seed = 7;
  Tracer a, b;
  traced_allgather(2, 16, ExecMode::Timed, &a, opts);
  traced_allgather(2, 16, ExecMode::Timed, &b, opts);
  const std::string ja = a.timeline_json();
  EXPECT_FALSE(ja.empty());
  EXPECT_EQ(ja, b.timeline_json());
  // The registry is reproducible except for the wall.* counters, which carry
  // real measured seconds by design.
  EXPECT_EQ(strip_wall_rows(a.metrics().csv()),
            strip_wall_rows(b.metrics().csv()));
}

TEST(Trace, SinkDoesNotPerturbSimulatedCost) {
  // The enabled trace path must price the run bit-identically to the
  // disabled one — including under transient-fault retries, whose RNG draw
  // order must not shift.
  const Machine m = Machine::gpc(2);
  const Communicator comm(m, make_layout(m, 16, {}));
  simmpi::TransientFaultConfig faults;
  faults.drop_prob = 0.2;
  faults.seed = 5;

  auto run = [&](TraceSink* sink) {
    Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, 16);
    eng.set_transient_faults(faults);
    if (sink) eng.set_trace_sink(sink);
    return collectives::run_allgather(
        eng,
        {collectives::AllgatherAlgo::RecursiveDoubling,
         collectives::OrderFix::None},
        identity_permutation(16));
  };

  const Usec plain = run(nullptr);
  NullSink null_sink;
  Tracer tracer;
  EXPECT_EQ(plain, run(&null_sink));  // exact, not approximate
  EXPECT_EQ(plain, run(&tracer));
  // And the tracer saw the retransmissions the fault model priced.
  EXPECT_GT(tracer.metrics().count("fault.retransmissions"), 0.0);
}

TEST(Trace, MetricsRegistryCapturesDecisionsAndHeat) {
  Tracer tracer;
  traced_allgather(2, 16, ExecMode::Timed, &tracer);
  const auto& reg = tracer.metrics();
  EXPECT_FALSE(reg.empty());
  // Engine activity.
  EXPECT_GT(reg.count("engine.stages"), 0.0);
  EXPECT_GT(reg.count("engine.transfers"), 0.0);
  // Mapping decision counters (the heuristic placed every rank).
  EXPECT_GE(reg.count("mapping.placements"), 16.0);
  const std::string csv = reg.csv();
  EXPECT_NE(csv.find("category,key,count,total,peak"), std::string::npos);
  EXPECT_NE(csv.find("cable "), std::string::npos);   // link heat rows
  EXPECT_NE(csv.find("channel"), std::string::npos);  // channel breakdown
}

TEST(Trace, HierarchicalPhasesAppearOnThePhaseTrack) {
  const Machine m = Machine::gpc(4);
  const int p = m.total_cores();
  const Communicator comm(m, make_layout(m, p, {}));
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, p);
  Tracer tracer;
  eng.set_trace_sink(&tracer);
  collectives::HierAllgatherOptions opts{collectives::AllgatherAlgo::Ring,
                                         collectives::IntraAlgo::Binomial,
                                         collectives::OrderFix::None};
  collectives::run_hier_allgather(eng, opts, identity_permutation(p));

  std::vector<std::string> phases;
  for (const auto& s : tracer.spans())
    if (s.pid == 0 && s.tid == 0) phases.push_back(s.name);
  EXPECT_NE(std::find(phases.begin(), phases.end(), "intra-gather"),
            phases.end());
  EXPECT_NE(std::find(phases.begin(), phases.end(), "leader-exchange"),
            phases.end());
  EXPECT_NE(std::find(phases.begin(), phases.end(), "intra-bcast"),
            phases.end());
}

TEST(Trace, PipelinedHierarchicalPhasesAppearOnThePhaseTrack) {
  // The pipelined variant overlaps the leader ring with the intra-node
  // broadcasts, so it emits a single fused phase after the gather.
  const Machine m = Machine::gpc(4);
  const int p = m.total_cores();
  const Communicator comm(m, make_layout(m, p, {}));
  Engine eng(comm, CostConfig{}, ExecMode::Timed, 256, p);
  Tracer tracer;
  eng.set_trace_sink(&tracer);
  collectives::run_hier_allgather_pipelined(eng, collectives::IntraAlgo::Binomial,
                                            collectives::OrderFix::None,
                                            identity_permutation(p));
  std::vector<std::string> phases;
  for (const auto& s : tracer.spans())
    if (s.pid == 0 && s.tid == 0) phases.push_back(s.name);
  EXPECT_NE(std::find(phases.begin(), phases.end(), "intra-gather"),
            phases.end());
  EXPECT_NE(std::find(phases.begin(), phases.end(), "pipelined-ring-bcast"),
            phases.end());
  // Tracing must not perturb the pipelined schedule's cost.
  Engine plain(comm, CostConfig{}, ExecMode::Timed, 256, p);
  collectives::run_hier_allgather_pipelined(plain,
                                            collectives::IntraAlgo::Binomial,
                                            collectives::OrderFix::None,
                                            identity_permutation(p));
  EXPECT_EQ(plain.total(), eng.total());
}

TEST(Trace, ShrunkenCommunicatorRunsTraceCleanly) {
  // Post-fault tracing: kill a node, shrink, re-run the collective over the
  // survivors — the trace must stay well-formed and cost-transparent.
  const Machine base = Machine::gpc(4);
  const Communicator parent(base, make_layout(base, base.total_cores(), {}));
  const fault::DegradedTopology topo(base, fault::FaultMask{}.fail_node(1));
  const fault::ShrunkComm shrunk = fault::shrink_communicator(topo, parent);

  auto run = [&](TraceSink* sink) {
    Engine eng(shrunk.comm, CostConfig{}, ExecMode::Timed, 256,
               shrunk.comm.size());
    if (sink != nullptr) eng.set_trace_sink(sink);
    return collectives::run_allgather(
        eng, {collectives::AllgatherAlgo::Ring, collectives::OrderFix::None},
        identity_permutation(shrunk.comm.size()));
  };
  Tracer tracer;
  const Usec traced = run(&tracer);
  EXPECT_EQ(traced, run(nullptr));  // exact, as everywhere else
  EXPECT_TRUE(JsonChecker(tracer.timeline_json()).valid());
  // The dead node's ranks are gone: no span belongs to a rank that died.
  const int survivors = shrunk.comm.size();
  for (const auto& s : tracer.spans())
    if (s.pid == 0 && s.tid >= 2) EXPECT_LT(s.tid - 2, survivors);
}

TEST(Trace, WallSpansAreOrdinalByDefaultAndRealWhenAsked) {
  // Default: deterministic ordinal placement (dur 1) on the wall-clock pid.
  Tracer det;
  traced_allgather(2, 16, ExecMode::Timed, &det);
  bool saw_wall = false;
  for (const auto& s : det.spans()) {
    if (s.pid != 2) continue;
    saw_wall = true;
    EXPECT_EQ(s.dur, 1.0) << s.name;
  }
  EXPECT_TRUE(saw_wall);

  // Opt-in: real (non-negative, generally positive) measured durations.
  TracerOptions topts;
  topts.real_wall_time = true;
  Tracer real(topts);
  traced_allgather(2, 16, ExecMode::Timed, &real);
  for (const auto& s : real.spans())
    if (s.pid == 2) EXPECT_GE(s.dur, 0.0);
}

TEST(Trace, TopoAllgatherForwardsItsSink) {
  const Machine m = Machine::gpc(2);
  core::ReorderFramework fw(m);
  const Communicator comm(m, make_layout(m, 16, {}));
  core::TopoAllgatherConfig cfg;  // heuristic mapper by default
  core::TopoAllgather path(fw, comm, cfg);
  Tracer tracer;
  path.set_trace_sink(&tracer);
  const Usec t = path.latency(16 * 1024);
  EXPECT_GT(t, 0.0);
  // Engine events and the first-use reorder's wall spans both arrived.
  EXPECT_GT(tracer.metrics().count("engine.stages"), 0.0);
  bool saw_wall = false;
  for (const auto& s : tracer.spans()) saw_wall |= s.pid == 2;
  EXPECT_TRUE(saw_wall);
  // Tracing must not change the predicted latency.
  core::TopoAllgather untraced(fw, comm, cfg);
  EXPECT_EQ(t, untraced.latency(16 * 1024));
}

// ---------------------------------------------------------------------------
// TraceSink contract: default handlers are no-ops, TeeSink fans out in order.

/// Appends one token per received event to a shared journal, so tests can
/// assert exact fan-out ordering across two sinks.
class JournalSink final : public TraceSink {
 public:
  JournalSink(std::string tag, std::vector<std::string>* journal)
      : tag_(std::move(tag)), journal_(journal) {}

  void on_stage(const StageEvent&) override { note("stage"); }
  void on_transfer(const TransferEvent&) override { note("transfer"); }
  void on_copy(const CopyEvent&) override { note("copy"); }
  void on_permute(const PermuteEvent&) override { note("permute"); }
  void on_phase(const PhaseEvent&) override { note("phase"); }
  void on_counter(const CounterSample&) override { note("counter"); }
  void on_wall_span(const WallSpan&) override { note("wall"); }
  void on_time(const TimeEvent&) override { note("time"); }
  void add_count(const std::string&, double) override { note("count"); }
  void observe(const std::string&, double) override { note("observe"); }

 private:
  void note(const char* what) { journal_->push_back(tag_ + ":" + what); }
  std::string tag_;
  std::vector<std::string>* journal_;
};

/// Drives all ten TraceSink entry points exactly once.
void emit_one_of_each(TraceSink& sink) {
  sink.on_stage(StageEvent{});
  sink.on_transfer(TransferEvent{});
  sink.on_copy(CopyEvent{});
  sink.on_permute(PermuteEvent{});
  sink.on_phase(PhaseEvent{});
  sink.on_counter(CounterSample{});
  sink.on_wall_span(WallSpan{});
  sink.on_time(TimeEvent{});
  sink.add_count("n", 1.0);
  sink.observe("n", 1.0);
}

TEST(Trace, DefaultSinkHandlersAreNoOps) {
  // A sink overriding nothing must accept every event kind without effect —
  // the contract that lets concrete sinks implement only what they consume.
  class MinimalSink final : public TraceSink {};
  MinimalSink minimal;
  emit_one_of_each(minimal);
  NullSink null_sink;
  emit_one_of_each(null_sink);  // same contract, the named variant
}

TEST(Trace, TeeSinkForwardsEveryKindFirstThenSecond) {
  std::vector<std::string> journal;
  JournalSink first("a", &journal), second("b", &journal);
  TeeSink tee(&first, &second);
  emit_one_of_each(tee);
  const std::vector<std::string> expected = {
      "a:stage",   "b:stage",   "a:transfer", "b:transfer", "a:copy",
      "b:copy",    "a:permute", "b:permute",  "a:phase",    "b:phase",
      "a:counter", "b:counter", "a:wall",     "b:wall",     "a:time",
      "b:time",    "a:count",   "b:count",    "a:observe",  "b:observe"};
  EXPECT_EQ(journal, expected);
}

TEST(Trace, TeeSinkToleratesNullLegs) {
  std::vector<std::string> journal;
  JournalSink only("x", &journal);
  TeeSink first_null(nullptr, &only);
  emit_one_of_each(first_null);
  EXPECT_EQ(journal.size(), 10u);
  journal.clear();
  TeeSink second_null(&only, nullptr);
  emit_one_of_each(second_null);
  EXPECT_EQ(journal.size(), 10u);
  TeeSink both_null(nullptr, nullptr);
  emit_one_of_each(both_null);  // must not crash
}

TEST(Trace, StageRepeatCompressionScalesMetrics) {
  const Machine m = Machine::gpc(1);
  const Communicator comm(m, make_layout(m, 4, {}));
  auto run = [&](int repeats, Tracer& tracer) {
    Engine eng(comm, CostConfig{}, ExecMode::Timed, 64, 4);
    eng.set_trace_sink(&tracer);
    eng.begin_stage();
    eng.copy(0, 0, 1, 0, 1);
    eng.end_stage();
    if (repeats > 1) eng.repeat_last_stage(repeats - 1);
    return eng.total();
  };
  Tracer once, thrice;
  const Usec t1 = run(1, once);
  const Usec t3 = run(3, thrice);
  EXPECT_NEAR(t3, 3.0 * t1, 1e-9);
  EXPECT_EQ(thrice.metrics().count("engine.stages"),
            3.0 * once.metrics().count("engine.stages"));
}

}  // namespace
}  // namespace tarr::trace
