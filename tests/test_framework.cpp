#include "core/framework.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/permutation.hpp"
#include "mapping/comparators.hpp"
#include "mapping/heuristics.hpp"
#include "simmpi/layout.hpp"

namespace tarr::core {
namespace {

using simmpi::Communicator;
using simmpi::LayoutSpec;
using simmpi::make_layout;
using topology::Machine;

TEST(Framework, DistanceExtractionIsCachedAndTimed) {
  const Machine m = Machine::gpc(4);
  ReorderFramework fw(m);
  EXPECT_EQ(fw.distance_extraction_seconds(), 0.0);
  const auto& d1 = fw.distances();
  const double t = fw.distance_extraction_seconds();
  EXPECT_GT(t, 0.0);
  const auto& d2 = fw.distances();
  EXPECT_EQ(&d1, &d2);  // cached
  EXPECT_EQ(fw.distance_extraction_seconds(), t);  // not re-extracted
}

TEST(Framework, ReorderInvariants) {
  // The key contract: the reordered communicator covers the same cores, and
  // oldrank links it back to the original (the process stays on its core).
  const Machine m = Machine::gpc(4);
  ReorderFramework fw(m);
  const Communicator comm(
      m, make_layout(m, 32,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Scatter}));
  for (auto pattern : {mapping::Pattern::RecursiveDoubling,
                       mapping::Pattern::Ring,
                       mapping::Pattern::BinomialBcast,
                       mapping::Pattern::BinomialGather}) {
    const ReorderedComm rc = fw.reorder(comm, pattern);
    ASSERT_EQ(rc.comm.size(), comm.size());
    EXPECT_TRUE(is_permutation_of_iota(rc.oldrank));
    for (Rank j = 0; j < comm.size(); ++j) {
      EXPECT_EQ(rc.comm.core_of(j), comm.core_of(rc.oldrank[j]))
          << "pattern " << mapping::to_string(pattern);
    }
    EXPECT_GE(rc.mapping_seconds, 0.0);
  }
}

TEST(Framework, DisabledFrameworkIsIdentity) {
  const Machine m = Machine::gpc(2);
  ReorderFramework::Options opts;
  opts.enabled = false;  // the "info key" off switch
  ReorderFramework fw(m, opts);
  const Communicator comm(m, make_layout(m, 16, LayoutSpec{}));
  const auto rc = fw.reorder(comm, mapping::Pattern::RecursiveDoubling);
  EXPECT_EQ(rc.comm.rank_to_core(), comm.rank_to_core());
  EXPECT_EQ(rc.oldrank, identity_permutation(16));
  EXPECT_EQ(rc.mapping_seconds, 0.0);
  const auto rh = fw.reorder_hierarchical(
      comm, mapping::Pattern::Ring, /*intra_reorder=*/true);
  EXPECT_EQ(rh.comm.rank_to_core(), comm.rank_to_core());
}

TEST(Framework, SeedChangesTieBreaking) {
  const Machine m = Machine::gpc(4);
  const Communicator comm(m, make_layout(m, 32, LayoutSpec{}));
  ReorderFramework::Options o1;
  o1.seed = 1;
  ReorderFramework::Options o2;
  o2.seed = 2;
  ReorderFramework f1(m, o1), f2(m, o2);
  const auto r1 = f1.reorder(comm, mapping::Pattern::RecursiveDoubling);
  const auto r2 = f2.reorder(comm, mapping::Pattern::RecursiveDoubling);
  // Same seed reproduces exactly; different seeds usually differ in the
  // tie-broken slots (we only require determinism, not difference).
  ReorderFramework f1b(m, o1);
  const auto r1b = f1b.reorder(comm, mapping::Pattern::RecursiveDoubling);
  EXPECT_EQ(r1.comm.rank_to_core(), r1b.comm.rank_to_core());
  (void)r2;
}

TEST(Framework, HierarchicalReorderKeepsNodeContiguity) {
  const Machine m = Machine::gpc(4);
  ReorderFramework fw(m);
  const Communicator comm(
      m, make_layout(m, 32,
                     LayoutSpec{simmpi::NodeOrder::Block,
                                simmpi::SocketOrder::Scatter}));
  for (bool intra : {false, true}) {
    const auto rc =
        fw.reorder_hierarchical(comm, mapping::Pattern::Ring, intra);
    EXPECT_TRUE(rc.comm.node_contiguous());
    EXPECT_TRUE(is_permutation_of_iota(rc.oldrank));
    for (Rank j = 0; j < comm.size(); ++j)
      EXPECT_EQ(rc.comm.core_of(j), comm.core_of(rc.oldrank[j]));
  }
}

TEST(Framework, HierarchicalWithoutIntraKeepsLocalOrder) {
  // With intra reordering disabled (linear phases) only whole node blocks
  // may move; the local core of the k-th rank of each block is unchanged.
  const Machine m = Machine::gpc(4);
  ReorderFramework fw(m);
  const Communicator comm(
      m, make_layout(m, 32,
                     LayoutSpec{simmpi::NodeOrder::Block,
                                simmpi::SocketOrder::Scatter}));
  const auto rc = fw.reorder_hierarchical(comm, mapping::Pattern::Ring,
                                          /*intra_reorder=*/false);
  const int cpn = m.cores_per_node();
  for (Rank j = 0; j < comm.size(); ++j) {
    EXPECT_EQ(m.local_core(rc.comm.core_of(j)),
              m.local_core(comm.core_of(j % cpn)));
  }
}

TEST(Framework, HierarchicalRejectsCyclic) {
  const Machine m = Machine::gpc(2);
  ReorderFramework fw(m);
  const Communicator comm(
      m, make_layout(m, 16,
                     LayoutSpec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Bunch}));
  EXPECT_THROW(
      fw.reorder_hierarchical(comm, mapping::Pattern::Ring, true), Error);
}

TEST(Framework, ReorderWithCustomMapper) {
  const Machine m = Machine::gpc(2);
  ReorderFramework fw(m);
  const Communicator comm(m, make_layout(m, 16, LayoutSpec{}));
  const auto mapper = mapping::make_scotch_like_mapper(mapping::Pattern::Ring);
  const auto rc = fw.reorder_with(comm, *mapper);
  EXPECT_TRUE(is_permutation_of_iota(rc.oldrank));
  for (Rank j = 0; j < comm.size(); ++j)
    EXPECT_EQ(rc.comm.core_of(j), comm.core_of(rc.oldrank[j]));
}

TEST(Framework, SubsetCommunicatorReorder) {
  // Reordering works for communicators that do not cover whole nodes.
  const Machine m = Machine::gpc(4);
  ReorderFramework fw(m);
  std::vector<CoreId> cores;
  for (int i = 0; i < 12; ++i) cores.push_back(i * 2);  // every other core
  const Communicator comm(m, cores);
  const auto rc = fw.reorder(comm, mapping::Pattern::Ring);
  EXPECT_TRUE(is_permutation_of_iota(rc.oldrank));
  auto sorted_new = rc.comm.rank_to_core();
  std::sort(sorted_new.begin(), sorted_new.end());
  EXPECT_EQ(sorted_new, cores);
}

}  // namespace
}  // namespace tarr::core
