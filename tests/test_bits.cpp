#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace tarr {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(-1));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(4));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_TRUE(is_pow2(1ll << 40));
  EXPECT_FALSE(is_pow2((1ll << 40) + 1));
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(4095), 11);
  EXPECT_EQ(floor_log2(4096), 12);
  EXPECT_THROW(floor_log2(0), Error);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(4097), 13);
}

TEST(Bits, FloorCeilPow2) {
  EXPECT_EQ(floor_pow2(1), 1);
  EXPECT_EQ(floor_pow2(7), 4);
  EXPECT_EQ(floor_pow2(8), 8);
  EXPECT_EQ(floor_pow2(9), 8);
  EXPECT_EQ(ceil_pow2(1), 1);
  EXPECT_EQ(ceil_pow2(7), 8);
  EXPECT_EQ(ceil_pow2(8), 8);
  EXPECT_EQ(ceil_pow2(9), 16);
}

class BitsRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(BitsRoundtrip, FloorAndCeilBracketValue) {
  const std::int64_t x = GetParam();
  EXPECT_LE(floor_pow2(x), x);
  EXPECT_GE(ceil_pow2(x), x);
  EXPECT_TRUE(is_pow2(floor_pow2(x)));
  EXPECT_TRUE(is_pow2(ceil_pow2(x)));
  if (is_pow2(x)) {
    EXPECT_EQ(floor_pow2(x), x);
    EXPECT_EQ(ceil_pow2(x), x);
  } else {
    EXPECT_EQ(2 * floor_pow2(x), ceil_pow2(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Values, BitsRoundtrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 100, 255,
                                           256, 257, 1023, 4096, 1000000));

}  // namespace
}  // namespace tarr
