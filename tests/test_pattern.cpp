#include "graph/pattern.hpp"

#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace tarr::graph {
namespace {

double edge_weight(const WeightedGraph& g, int u, int v) {
  for (const auto& nb : g.neighbors(u))
    if (nb.vertex == v) return nb.weight;
  return 0.0;
}

class RdPattern : public ::testing::TestWithParam<int> {};

TEST_P(RdPattern, StructureMatchesDefinition) {
  const int p = GetParam();
  const WeightedGraph g = recursive_doubling_pattern(p);
  EXPECT_EQ(g.num_vertices(), p);
  // Each vertex talks to exactly log2(p) peers: i XOR 2^s with weight 2^s.
  const int stages = floor_log2(p);
  for (int i = 0; i < p; ++i) {
    EXPECT_EQ(static_cast<int>(g.neighbors(i).size()), stages);
  }
  for (int s = 0; s < stages; ++s) {
    const int dist = 1 << s;
    EXPECT_DOUBLE_EQ(edge_weight(g, 0, dist), static_cast<double>(dist));
    EXPECT_DOUBLE_EQ(edge_weight(g, 5 % p, (5 % p) ^ dist),
                     static_cast<double>(dist));
  }
}

TEST_P(RdPattern, TotalVolumeIsAllgatherVolume) {
  // Total exchanged blocks = p-1 per rank: sum of edge weights (each edge
  // carries its volume in both directions) = p(p-1)/2... counted once per
  // edge: sum w(e) = p/2 * (1+2+...+p/2) summed per stage = p(p-1)/2.
  const int p = GetParam();
  const WeightedGraph g = recursive_doubling_pattern(p);
  double total = 0;
  for (const auto& e : g.edges()) total += e.w;
  EXPECT_DOUBLE_EQ(total, p * (p - 1) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Pow2, RdPattern, ::testing::Values(2, 4, 8, 32, 128));

TEST(RdPatternErrors, RejectsNonPow2) {
  EXPECT_THROW(recursive_doubling_pattern(6), Error);
  EXPECT_THROW(recursive_doubling_pattern(0), Error);
}

class RingPattern : public ::testing::TestWithParam<int> {};

TEST_P(RingPattern, CycleWithUniformWeight) {
  const int p = GetParam();
  const WeightedGraph g = ring_pattern(p);
  EXPECT_EQ(g.num_edges(), p == 2 ? 1 : p);
  for (int i = 0; i < p; ++i) {
    const double expected = p == 2 ? 2.0 * (p - 1) : p - 1.0;
    EXPECT_DOUBLE_EQ(edge_weight(g, i, (i + 1) % p), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingPattern, ::testing::Values(2, 3, 5, 16, 31));

class BinomialPatterns : public ::testing::TestWithParam<int> {};

TEST_P(BinomialPatterns, BcastIsASpanningTree) {
  const int p = GetParam();
  const WeightedGraph g = binomial_bcast_pattern(p);
  EXPECT_EQ(g.num_edges(), p - 1);  // tree
  for (const auto& e : g.edges()) EXPECT_DOUBLE_EQ(e.w, 1.0);
  // Every non-root vertex has exactly one parent in the halving tree:
  // r - lsb(r).
  for (int r = 1; r < p; ++r) {
    const int parent = r - (r & -r);
    EXPECT_GT(edge_weight(g, parent, r), 0.0);
  }
}

TEST_P(BinomialPatterns, GatherWeightsAreSubtreeSizes) {
  const int p = GetParam();
  const WeightedGraph g = binomial_gather_pattern(p);
  EXPECT_EQ(g.num_edges(), p - 1);
  // Sum of subtree sizes over all edges = sum over non-root vertices of
  // their depth-counted appearance = total blocks forwarded = sum over
  // non-root r of (subtree of r).  Check the root's heavy edge directly.
  if (is_pow2(p)) {
    EXPECT_DOUBLE_EQ(edge_weight(g, 0, p / 2), p / 2.0);
  }
  // Total forwarded volume equals sum over vertices != 0 of subtree(r),
  // which for any tree equals sum of depths... here simply check all
  // weights are >= 1 and the total is >= p-1.
  double total = 0;
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.w, 1.0);
    total += e.w;
  }
  EXPECT_GE(total, p - 1.0);
}

TEST_P(BinomialPatterns, BruckConnectsPowerOfTwoOffsets) {
  const int p = GetParam();
  const WeightedGraph g = bruck_pattern(p);
  for (int dist = 1; dist < p; dist <<= 1) {
    EXPECT_GT(edge_weight(g, dist % p, 0), 0.0)
        << "missing bruck edge at dist " << dist << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BinomialPatterns,
                         ::testing::Values(2, 3, 7, 8, 12, 16, 33));

}  // namespace
}  // namespace tarr::graph
