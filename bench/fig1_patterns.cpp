// Fig 1 regeneration: the recursive-doubling communication pattern with 8
// processes, stage by stage (plus, beyond the paper's figure, the other
// patterns covered by the mapping heuristics).

#include <cstdio>

#include "common/bits.hpp"
#include "graph/pattern.hpp"

namespace {

using tarr::graph::WeightedGraph;

void print_rd_stages(int p) {
  std::printf("Fig 1 — recursive doubling pattern, %d processes\n", p);
  int stage = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++stage) {
    std::printf("  stage %d (exchanging %d block%s): ", stage, dist,
                dist > 1 ? "s" : "");
    for (int i = 0; i < p; ++i) {
      const int peer = i ^ dist;
      if (i < peer) std::printf("%d<->%d ", i, peer);
    }
    std::printf("\n");
  }
}

void print_edges(const char* name, const WeightedGraph& g) {
  std::printf("%s (%d vertices, %d edges):\n  ", name, g.num_vertices(),
              g.num_edges());
  for (const auto& e : g.edges())
    std::printf("(%d,%d,w=%.0f) ", e.u, e.v, e.w);
  std::printf("\n");
}

}  // namespace

int main() {
  print_rd_stages(8);
  std::printf("\nPattern graphs consumed by the general-purpose mappers:\n");
  print_edges("recursive-doubling p=8",
              tarr::graph::recursive_doubling_pattern(8));
  print_edges("ring p=8", tarr::graph::ring_pattern(8));
  print_edges("binomial-bcast p=8", tarr::graph::binomial_bcast_pattern(8));
  print_edges("binomial-gather p=8", tarr::graph::binomial_gather_pattern(8));
  print_edges("bruck p=8", tarr::graph::bruck_pattern(8));
  return 0;
}
