// Ablation: failure injection / degraded fabric.  Cut one of the two
// uplink bundles of every leaf switch (the blocking ratio worsens from 5:1
// to 10:1) and re-run the Fig 3 headline cells.  Topology awareness matters
// *more* on a sicker network — the congestion the reorder avoids is larger.

#include <cstdio>

#include "bench/sweep.hpp"
#include "common/table.hpp"
#include "core/topoallgather.hpp"
#include "simmpi/layout.hpp"
#include "topology/fattree.hpp"

namespace {

using namespace tarr;
using namespace tarr::bench;

double improvement(const topology::Machine& machine,
                   const simmpi::LayoutSpec& spec, Bytes msg) {
  core::ReorderFramework framework(machine);
  const simmpi::Communicator comm(
      machine,
      simmpi::make_layout(machine, machine.total_cores(), spec));
  core::TopoAllgatherConfig def;
  def.mapper = core::MapperKind::None;
  core::TopoAllgather base(framework, comm, def);
  core::TopoAllgatherConfig heu;
  heu.mapper = core::MapperKind::Heuristic;
  heu.fix = collectives::OrderFix::InitComm;
  core::TopoAllgather h(framework, comm, heu);
  return improvement_percent(base.latency(msg), h.latency(msg));
}

}  // namespace

int main() {
  using namespace tarr::topology;

  const SwitchGraph healthy = build_gpc_network(512);
  // Fail the second uplink bundle (to core switch 1) of every leaf.
  std::vector<LinkId> victims;
  for (int l = 0; l < healthy.num_links(); ++l) {
    const auto& link = healthy.link(l);
    const bool leaf_line =
        (healthy.vertex(link.a).kind == VertexKind::LeafSwitch &&
         healthy.vertex(link.b).kind == VertexKind::LineSwitch) ||
        (healthy.vertex(link.b).kind == VertexKind::LeafSwitch &&
         healthy.vertex(link.a).kind == VertexKind::LineSwitch);
    if (leaf_line &&
        healthy.vertex(link.a).name.find("core1") != std::string::npos)
      victims.push_back(l);
    if (leaf_line &&
        healthy.vertex(link.b).name.find("core1") != std::string::npos)
      victims.push_back(l);
  }
  const SwitchGraph degraded = healthy.with_failed_links(victims);

  const Machine m_healthy(NodeShape{}, healthy);
  const Machine m_degraded(NodeShape{}, degraded);

  std::printf(
      "Ablation — degraded fabric (every leaf loses its core-switch-1\n"
      "uplinks: blocking 5:1 -> 10:1), 4096 processes, Hrstc+initComm\n\n");

  tarr::TextTable t;
  t.set_header({"fabric", "layout", "RD 1KB impr %", "ring 64KB impr %"});
  const simmpi::LayoutSpec block{};
  const simmpi::LayoutSpec cyclic{simmpi::NodeOrder::Cyclic,
                                  simmpi::SocketOrder::Bunch};
  for (const auto* which : {"healthy", "degraded"}) {
    const Machine& m =
        std::string(which) == "healthy" ? m_healthy : m_degraded;
    t.add_row({which, "block-bunch",
               tarr::TextTable::num(improvement(m, block, 1024), 1),
               tarr::TextTable::num(improvement(m, block, 64 * 1024), 1)});
    t.add_row({which, "cyclic-bunch",
               tarr::TextTable::num(improvement(m, cyclic, 1024), 1),
               tarr::TextTable::num(improvement(m, cyclic, 64 * 1024), 1)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(%zu uplink bundles failed)\n", victims.size());
  return 0;
}
