// Ablation: §V-B order-preservation mechanism — extra initial
// communications vs memory shuffling at the end — as a function of message
// size.  The paper observes initComm generally outperforming endShfl, with
// the shuffle especially costly around 512B-1KB under cyclic mappings and in
// the hierarchical-linear case.

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;
  using collectives::OrderFix;
  using core::MapperKind;

  BenchWorld world(kPaperNodes);
  const simmpi::LayoutSpec cyclic{simmpi::NodeOrder::Cyclic,
                                  simmpi::SocketOrder::Scatter};

  core::TopoAllgatherConfig ic;
  ic.mapper = MapperKind::Heuristic;
  ic.fix = OrderFix::InitComm;
  auto path_ic = world.path(kPaperProcs, cyclic, ic);

  core::TopoAllgatherConfig es = ic;
  es.fix = OrderFix::EndShuffle;
  auto path_es = world.path(kPaperProcs, cyclic, es);

  std::printf(
      "Ablation — order-preservation mechanism, %d processes,\n"
      "cyclic-scatter initial mapping, Hrstc reordering\n\n",
      kPaperProcs);

  TextTable t;
  t.set_header({"msg", "initComm(us)", "endShfl(us)", "endShfl penalty %"});
  for (Bytes msg : osu_message_sizes()) {
    const double a = path_ic.latency(msg);
    const double b = path_es.latency(msg);
    t.add_row({TextTable::bytes(msg), TextTable::num(a, 1),
               TextTable::num(b, 1),
               TextTable::num(100.0 * (b - a) / a, 2)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
