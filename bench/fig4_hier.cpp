// Fig 4 regeneration: micro-benchmark performance improvements of
// hierarchical topology-aware allgather with 4096 processes, two initial
// mappings (block-bunch, block-scatter — the paper notes hierarchical
// allgather is not supported under cyclic layouts) and two intra-node phase
// styles (non-linear = binomial, linear).

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;
  using collectives::IntraAlgo;
  using collectives::OrderFix;
  using core::MapperKind;

  const int nodes = bench_nodes(kPaperNodes);
  const int procs = bench_procs(nodes);
  BenchWorld world(nodes);
  const auto sizes = osu_message_sizes(1, bench_max_msg(256 * 1024));
  SnapshotEmitter snapshot("fig4_hier");
  snapshot.set_meta("nodes", std::to_string(nodes));
  snapshot.set_meta("procs", std::to_string(procs));

  std::printf(
      "Fig 4 — hierarchical topology-aware allgather, %d processes\n"
      "%% latency improvement over the default hierarchical algorithm\n\n",
      procs);

  const simmpi::LayoutSpec layouts[] = {
      {simmpi::NodeOrder::Block, simmpi::SocketOrder::Bunch},
      {simmpi::NodeOrder::Block, simmpi::SocketOrder::Scatter},
  };
  const IntraAlgo intras[] = {IntraAlgo::Binomial, IntraAlgo::Linear};

  int fig = 0;
  for (IntraAlgo intra : intras) {
    for (const auto& spec : layouts) {
      const char* suffix = intra == IntraAlgo::Binomial ? "NL" : "L";

      core::TopoAllgatherConfig def;
      def.mapper = MapperKind::None;
      def.hierarchical = true;
      def.intra = intra;
      auto base = world.path(procs, spec, def);

      auto variant = [&](MapperKind kind, OrderFix fix) {
        core::TopoAllgatherConfig cfg = def;
        cfg.mapper = kind;
        cfg.fix = fix;
        return world.path(procs, spec, cfg);
      };
      auto h_ic = variant(MapperKind::Heuristic, OrderFix::InitComm);
      auto h_es = variant(MapperKind::Heuristic, OrderFix::EndShuffle);
      auto s_ic = variant(MapperKind::ScotchLike, OrderFix::InitComm);
      auto s_es = variant(MapperKind::ScotchLike, OrderFix::EndShuffle);

      TextTable t;
      t.set_header({"msg", "default(us)",
                    std::string("Hrstc-") + suffix + "+initComm",
                    std::string("Hrstc-") + suffix + "+endShfl",
                    std::string("Scotch-") + suffix + "+initComm",
                    std::string("Scotch-") + suffix + "+endShfl"});
      double hrstc_impr_sum = 0.0;
      double max_msg_default = 0.0;
      for (Bytes msg : sizes) {
        const double d = base.latency(msg);
        max_msg_default = d;
        hrstc_impr_sum += improvement_percent(d, h_ic.latency(msg));
        t.add_row({TextTable::bytes(msg), TextTable::num(d, 1),
                   TextTable::num(improvement_percent(d, h_ic.latency(msg)), 1),
                   TextTable::num(improvement_percent(d, h_es.latency(msg)), 1),
                   TextTable::num(improvement_percent(d, s_ic.latency(msg)), 1),
                   TextTable::num(improvement_percent(d, s_es.latency(msg)),
                                  1)});
      }
      const std::string tag =
          simmpi::to_string(spec) + "." + (intra == IntraAlgo::Binomial
                                               ? "nonlinear"
                                               : "linear");
      snapshot.add_metric(tag + ".hrstc_initcomm_mean_improvement",
                          hrstc_impr_sum / static_cast<double>(sizes.size()),
                          "percent", /*higher_is_better=*/true);
      snapshot.add_metric(tag + ".default_latency_maxmsg", max_msg_default,
                          "us", /*higher_is_better=*/false);
      std::printf("Fig 4(%c) — %s, %s intra-node phases\n%s\n",
                  static_cast<char>('a' + fig++),
                  simmpi::to_string(spec).c_str(),
                  intra == IntraAlgo::Binomial ? "non-linear" : "linear",
                  t.render().c_str());
    }
  }
  snapshot.dump();
  return 0;
}
