// Fig 3 regeneration: micro-benchmark performance improvements of
// non-hierarchical topology-aware allgather over the MVAPICH-like default,
// with 4096 processes and four initial mappings (block-bunch, block-scatter,
// cyclic-bunch, cyclic-scatter).
//
// Series, as in the paper: Hrstc/Scotch x {initComm, endShfl}; values are
// percentage latency improvement over the default library (positive =
// faster).  The default's recursive-doubling path includes MVAPICH's own
// internal block->cyclic reorder, as described in §V-A1.
//
// With TARR_TRACE_OUT / TARR_TRACE_METRICS set, the slowest topology-aware
// configuration of the whole sweep is re-run with tracing and its timeline /
// metrics written there (see docs/OBSERVABILITY.md).

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;
  using core::MapperKind;
  using collectives::OrderFix;

  const int nodes = bench_nodes(kPaperNodes);
  const int procs = bench_procs(nodes);
  BenchWorld world(nodes);
  const auto sizes = osu_message_sizes(1, bench_max_msg(256 * 1024));
  SlowestConfigTrace slowest;
  SnapshotEmitter snapshot("fig3_nonhier");
  snapshot.set_meta("nodes", std::to_string(nodes));
  snapshot.set_meta("procs", std::to_string(procs));

  std::printf(
      "Fig 3 — non-hierarchical topology-aware allgather, %d processes\n"
      "%% latency improvement over the MVAPICH-like default\n\n",
      procs);

  const char sub = 'a';
  int fig = 0;
  for (const auto& spec : simmpi::all_layouts()) {
    core::TopoAllgatherConfig def;
    def.mapper = MapperKind::None;
    auto base = world.path(procs, spec, def);

    struct Series {
      const char* name;
      core::TopoAllgatherConfig cfg;
      core::TopoAllgather path;
    };
    auto variant = [&](const char* name, MapperKind kind, OrderFix fix) {
      core::TopoAllgatherConfig cfg;
      cfg.mapper = kind;
      cfg.fix = fix;
      return Series{name, cfg, world.path(procs, spec, cfg)};
    };
    Series series[] = {
        variant("Hrstc+initComm", MapperKind::Heuristic, OrderFix::InitComm),
        variant("Hrstc+endShfl", MapperKind::Heuristic, OrderFix::EndShuffle),
        variant("Scotch+initComm", MapperKind::ScotchLike, OrderFix::InitComm),
        variant("Scotch+endShfl", MapperKind::ScotchLike, OrderFix::EndShuffle),
    };

    TextTable t;
    t.set_header({"msg", "default(us)", series[0].name, series[1].name,
                  series[2].name, series[3].name});
    double hrstc_impr_sum = 0.0;
    double max_msg_default = 0.0;
    for (Bytes msg : sizes) {
      const double d = base.latency(msg);
      max_msg_default = d;
      std::vector<std::string> row{TextTable::bytes(msg),
                                   TextTable::num(d, 1)};
      for (auto& s : series) {
        const double lat = s.path.latency(msg);
        row.push_back(TextTable::num(improvement_percent(d, lat), 1));
        if (&s == &series[0]) hrstc_impr_sum += improvement_percent(d, lat);
        slowest.note(lat,
                     std::string(simmpi::to_string(spec)) + " " + s.name +
                         " msg=" + std::to_string(msg),
                     [&world, spec, cfg = s.cfg, msg,
                      procs](trace::TraceSink* sink) {
                       auto path = world.path(procs, spec, cfg);
                       path.set_trace_sink(sink);
                       return path.latency(msg);
                     });
      }
      t.add_row(std::move(row));
    }
    const std::string layout = simmpi::to_string(spec);
    snapshot.add_metric(layout + ".hrstc_initcomm_mean_improvement",
                        hrstc_impr_sum / static_cast<double>(sizes.size()),
                        "percent", /*higher_is_better=*/true);
    snapshot.add_metric(layout + ".default_latency_maxmsg", max_msg_default,
                        "us", /*higher_is_better=*/false);
    std::printf("Fig 3(%c) — initial mapping: %s\n%s\n",
                static_cast<char>(sub + fig++),
                simmpi::to_string(spec).c_str(), t.render().c_str());
  }
  slowest.dump();
  snapshot.dump();
  return 0;
}
