// Fig 3 regeneration: micro-benchmark performance improvements of
// non-hierarchical topology-aware allgather over the MVAPICH-like default,
// with 4096 processes and four initial mappings (block-bunch, block-scatter,
// cyclic-bunch, cyclic-scatter).
//
// Series, as in the paper: Hrstc/Scotch x {initComm, endShfl}; values are
// percentage latency improvement over the default library (positive =
// faster).  The default's recursive-doubling path includes MVAPICH's own
// internal block->cyclic reorder, as described in §V-A1.

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;
  using core::MapperKind;
  using collectives::OrderFix;

  BenchWorld world(kPaperNodes);
  const auto sizes = osu_message_sizes();

  std::printf(
      "Fig 3 — non-hierarchical topology-aware allgather, %d processes\n"
      "%% latency improvement over the MVAPICH-like default\n\n",
      kPaperProcs);

  const char sub = 'a';
  int fig = 0;
  for (const auto& spec : simmpi::all_layouts()) {
    core::TopoAllgatherConfig def;
    def.mapper = MapperKind::None;
    auto base = world.path(kPaperProcs, spec, def);

    struct Series {
      const char* name;
      core::TopoAllgather path;
    };
    auto variant = [&](MapperKind kind, OrderFix fix) {
      core::TopoAllgatherConfig cfg;
      cfg.mapper = kind;
      cfg.fix = fix;
      return world.path(kPaperProcs, spec, cfg);
    };
    Series series[] = {
        {"Hrstc+initComm", variant(MapperKind::Heuristic, OrderFix::InitComm)},
        {"Hrstc+endShfl",
         variant(MapperKind::Heuristic, OrderFix::EndShuffle)},
        {"Scotch+initComm",
         variant(MapperKind::ScotchLike, OrderFix::InitComm)},
        {"Scotch+endShfl",
         variant(MapperKind::ScotchLike, OrderFix::EndShuffle)},
    };

    TextTable t;
    t.set_header({"msg", "default(us)", series[0].name, series[1].name,
                  series[2].name, series[3].name});
    for (Bytes msg : sizes) {
      const double d = base.latency(msg);
      std::vector<std::string> row{TextTable::bytes(msg),
                                   TextTable::num(d, 1)};
      for (auto& s : series) {
        row.push_back(
            TextTable::num(improvement_percent(d, s.path.latency(msg)), 1));
      }
      t.add_row(std::move(row));
    }
    std::printf("Fig 3(%c) — initial mapping: %s\n%s\n",
                static_cast<char>(sub + fig++),
                simmpi::to_string(spec).c_str(), t.render().c_str());
  }
  return 0;
}
