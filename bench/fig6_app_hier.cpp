// Fig 6 regeneration: application execution time, normalized to the default
// *hierarchical* configuration, at 1024 processes, for block-bunch and
// block-scatter initial mappings with non-linear and linear intra-node
// phases.

#include <cstdio>

#include "bench/appmodel.hpp"
#include "bench/fixtures.hpp"
#include "common/table.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;
  using collectives::IntraAlgo;
  using collectives::OrderFix;
  using core::MapperKind;

  const int nodes = bench_nodes(kAppNodes);
  const int procs = bench_procs(nodes);
  BenchWorld world(nodes);
  const auto trace = default_app_trace();
  SnapshotEmitter snapshot("fig6_app_hier");
  snapshot.set_meta("nodes", std::to_string(nodes));
  snapshot.set_meta("procs", std::to_string(procs));
  snapshot.set_meta("allgather_calls", std::to_string(trace_calls(trace)));

  std::printf(
      "Fig 6 — application execution time (normalized to default),\n"
      "hierarchical allgather, %d processes, %d Allgather calls\n\n",
      procs, trace_calls(trace));

  const simmpi::LayoutSpec layouts[] = {
      {simmpi::NodeOrder::Block, simmpi::SocketOrder::Bunch},
      {simmpi::NodeOrder::Block, simmpi::SocketOrder::Scatter},
  };

  int fig = 0;
  for (IntraAlgo intra : {IntraAlgo::Binomial, IntraAlgo::Linear}) {
    for (const auto& spec : layouts) {
      const char* suffix = intra == IntraAlgo::Binomial ? "NL" : "L";

      core::TopoAllgatherConfig def;
      def.mapper = MapperKind::None;
      def.hierarchical = true;
      def.intra = intra;
      auto base = world.path(procs, spec, def);
      const Usec coll_default = app_collective_time(base, trace);
      const Usec compute = coll_default;
      const Usec total_default = compute + coll_default;
      const std::string layout =
          simmpi::to_string(spec) + "." + std::string(suffix);
      snapshot.add_metric(layout + ".default_collective_us", coll_default,
                          "us", /*higher_is_better=*/false);

      TextTable t;
      t.set_header({"variant", "collective(s)", "overhead(s)", "normalized"});
      t.add_row({"default", TextTable::num(coll_default * 1e-6, 3), "0.000",
                 "1.00"});
      for (MapperKind kind :
           {MapperKind::Heuristic, MapperKind::ScotchLike}) {
        core::TopoAllgatherConfig cfg = def;
        cfg.mapper = kind;
        cfg.fix = OrderFix::InitComm;
        auto path = world.path(procs, spec, cfg);
        const Usec coll = app_collective_time(path, trace);
        const Usec overhead = path.mapping_seconds() * 1e6;
        // Same gating split as fig5: simulated metrics gate, the end-to-end
        // normalized value (wall-clock overhead inside) only trends.
        const std::string prefix =
            layout + "." + std::string(core::to_string(kind));
        snapshot.add_metric(prefix + "_collective_us", coll, "us",
                            /*higher_is_better=*/false);
        snapshot.add_metric(prefix + "_normalized_sim",
                            (compute + coll) / total_default, "ratio",
                            /*higher_is_better=*/false);
        snapshot.add_metric(prefix + "_normalized",
                            (compute + coll + overhead) / total_default,
                            "ratio",
                            /*higher_is_better=*/false, /*gate=*/false);
        t.add_row({std::string(core::to_string(kind)) + "-" + suffix,
                   TextTable::num(coll * 1e-6, 3),
                   TextTable::num(overhead * 1e-6, 3),
                   TextTable::num((compute + coll + overhead) / total_default,
                                  2)});
      }
      std::printf("Fig 6(%c) — %s, %s intra-node phases\n%s\n",
                  static_cast<char>('a' + fig++),
                  simmpi::to_string(spec).c_str(),
                  intra == IntraAlgo::Binomial ? "non-linear" : "linear",
                  t.render().c_str());
    }
  }
  snapshot.dump();
  return 0;
}
