// Extension bench: congestion introspection.  The paper attributes its
// improvements to "avoiding message transmissions over slower channels" and
// reduced congestion; the simulator can show that directly by reporting the
// peak per-cable network load of every allgather stage before and after
// reordering (4096 processes, 64 KB ring regime, cyclic-bunch initial).

#include <cstdio>

#include "bench/fixtures.hpp"
#include "collectives/allgather.hpp"
#include "common/permutation.hpp"
#include "common/table.hpp"
#include "simmpi/engine.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;

  BenchWorld world(kPaperNodes);
  const int p = kPaperProcs;
  const Bytes msg = 64 * 1024;
  const simmpi::LayoutSpec cyclic{simmpi::NodeOrder::Cyclic,
                                  simmpi::SocketOrder::Bunch};
  const auto comm = world.comm(p, cyclic);
  const auto rc = world.framework.reorder(comm, mapping::Pattern::Ring);

  std::printf(
      "Extension — peak per-cable link load of the ring allgather,\n"
      "%d processes, 64KB messages, cyclic-bunch initial mapping\n\n",
      p);

  auto measure = [&](const simmpi::Communicator& c,
                     const std::vector<Rank>& oldrank) {
    simmpi::Engine eng(c, simmpi::CostConfig{}, simmpi::ExecMode::Timed, msg,
                       p);
    collectives::run_allgather(
        eng,
        collectives::AllgatherOptions{collectives::AllgatherAlgo::Ring,
                                      collectives::OrderFix::None},
        oldrank);
    return std::pair<double, Usec>(eng.peak_link_bytes(), eng.total());
  };

  const auto [before_load, before_t] =
      measure(comm, identity_permutation(p));
  const auto [after_load, after_t] = measure(rc.comm, rc.oldrank);

  TextTable t;
  t.set_header({"mapping", "peak link load / stage", "latency(us)"});
  t.add_row({"cyclic (initial)",
             TextTable::bytes(static_cast<long long>(before_load)),
             TextTable::num(before_t, 1)});
  t.add_row({"RMH reordered",
             TextTable::bytes(static_cast<long long>(after_load)),
             TextTable::num(after_t, 1)});
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nThe reorder cuts the hottest cable's per-stage load by %.1fx,\n"
      "which is where the latency improvement comes from.\n",
      before_load / after_load);
  return 0;
}
