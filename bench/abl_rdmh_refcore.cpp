// Ablation: RDMH reference-core update period.  Algorithm 2 advances the
// reference after every *two* processes mapped around it (the paper derives
// this from the recursive-doubling stage structure); this bench compares
// periods 1, 2 (paper), 4 and "never" on the weighted cost and on simulated
// allgather latency across the recursive-doubling regime.

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "collectives/allgather.hpp"
#include "common/table.hpp"
#include "mapping/comparators.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/mapcost.hpp"
#include "simmpi/engine.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;

  BenchWorld world(kPaperNodes);
  const int p = kPaperProcs;
  const auto& dist = world.framework.distances();
  const auto pattern = mapping::build_pattern_graph(
      mapping::Pattern::RecursiveDoubling, p);
  const auto comm = world.comm(p, simmpi::LayoutSpec{});
  const std::vector<int> initial(comm.rank_to_core().begin(),
                                 comm.rank_to_core().end());

  std::printf(
      "Ablation — RDMH reference-core update period, %d processes,\n"
      "block-bunch initial mapping, recursive-doubling allgather\n\n",
      p);

  TextTable t;
  t.set_header({"period", "weighted cost", "allgather 1KB (us)",
                "allgather 16KB (us)"});
  for (int period : {1, 2, 4, 0}) {
    Rng rng(1);
    mapping::RdmhMapper mapper(period);
    const auto result = mapper.map(initial, dist, rng);
    const auto reordered = comm.reordered(result);

    auto latency = [&](Bytes msg) {
      simmpi::Engine eng(reordered, simmpi::CostConfig{},
                         simmpi::ExecMode::Timed, msg, p);
      return collectives::run_allgather(
          eng,
          collectives::AllgatherOptions{
              collectives::AllgatherAlgo::RecursiveDoubling,
              collectives::OrderFix::None});
    };
    t.add_row({period == 0 ? "never" : std::to_string(period),
               TextTable::num(mapping::mapping_cost(pattern, result, dist), 0),
               TextTable::num(latency(1024), 1),
               TextTable::num(latency(16 * 1024), 1)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(period 2 is Algorithm 2 as published)\n");
  return 0;
}
