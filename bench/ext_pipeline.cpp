// Extension bench: phase-overlapped (pipelined) hierarchical allgather —
// the related-work direction of Ma et al. [19] — vs the sequential
// gather/exchange/broadcast phases, with and without rank reordering.

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "collectives/hierarchical.hpp"
#include "common/permutation.hpp"
#include "common/table.hpp"
#include "simmpi/engine.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;
  using namespace tarr::collectives;

  BenchWorld world(kPaperNodes);
  const int p = kPaperProcs;
  const auto comm = world.comm(p, simmpi::LayoutSpec{});
  const auto rc = world.framework.reorder_hierarchical(
      comm, mapping::Pattern::Ring, /*intra_reorder=*/true);

  std::printf(
      "Extension — pipelined hierarchical allgather (overlapping the\n"
      "leader ring with intra-node broadcasts), %d processes, block-bunch\n\n",
      p);

  auto sequential = [&](const simmpi::Communicator& c,
                        const std::vector<Rank>& oldrank, OrderFix fix,
                        Bytes msg) {
    simmpi::Engine eng(c, simmpi::CostConfig{}, simmpi::ExecMode::Timed, msg,
                       p);
    run_hier_allgather(
        eng, HierAllgatherOptions{AllgatherAlgo::Ring, IntraAlgo::Binomial,
                                  fix},
        oldrank);
    return eng.total();
  };
  auto pipelined = [&](const simmpi::Communicator& c,
                       const std::vector<Rank>& oldrank, OrderFix fix,
                       Bytes msg) {
    simmpi::Engine eng(c, simmpi::CostConfig{}, simmpi::ExecMode::Timed, msg,
                       p);
    run_hier_allgather_pipelined(eng, IntraAlgo::Binomial, fix, oldrank);
    return eng.total();
  };

  const auto id = identity_permutation(p);
  TextTable t;
  t.set_header({"msg", "sequential(us)", "pipelined(us)", "overlap gain %",
                "pipelined+Hrstc(us)"});
  for (Bytes msg : {Bytes(4 * 1024), Bytes(16 * 1024), Bytes(64 * 1024),
                    Bytes(256 * 1024)}) {
    const Usec seq = sequential(comm, id, OrderFix::None, msg);
    const Usec pipe = pipelined(comm, id, OrderFix::None, msg);
    const Usec pipe_h =
        pipelined(rc.comm, rc.oldrank, OrderFix::InitComm, msg);
    t.add_row({TextTable::bytes(msg), TextTable::num(seq, 1),
               TextTable::num(pipe, 1),
               TextTable::num(improvement_percent(seq, pipe), 1),
               TextTable::num(pipe_h, 1)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
