// Extension bench (§VII future work): the adaptive runtime component that
// decides per message size whether to route a collective through the
// reordered communicator.  Shown on the layout where reordering sometimes
// helps and sometimes cannot (block-bunch): the adaptive path must track
// the lower envelope of the two.

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "common/table.hpp"
#include "core/adaptive.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;
  using collectives::OrderFix;
  using core::MapperKind;

  BenchWorld world(kPaperNodes);
  const auto sizes = osu_message_sizes(64);
  const auto comm = world.comm(kPaperProcs, simmpi::LayoutSpec{});

  core::TopoAllgatherConfig variant;
  variant.mapper = MapperKind::Heuristic;
  variant.fix = OrderFix::InitComm;
  core::AdaptiveAllgather adaptive(world.framework, comm, variant, sizes);

  core::TopoAllgatherConfig def;
  def.mapper = MapperKind::None;
  core::TopoAllgather d(world.framework, world.comm(kPaperProcs, {}), def);
  core::TopoAllgather v(world.framework, world.comm(kPaperProcs, {}),
                        variant);

  std::printf(
      "Extension — adaptive reordering decision, %d processes,\n"
      "block-bunch initial mapping\n\n",
      kPaperProcs);

  TextTable t;
  t.set_header({"msg", "default(us)", "reordered(us)", "adaptive(us)",
                "decision"});
  for (Bytes msg : sizes) {
    t.add_row({TextTable::bytes(msg), TextTable::num(d.latency(msg), 1),
               TextTable::num(v.latency(msg), 1),
               TextTable::num(adaptive.latency(msg), 1),
               adaptive.use_reordered(msg) ? "reordered" : "default"});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
