// Extension bench: general topology-aware mapping for point-to-point
// application patterns (§V's "general forms"), measured as the simulated
// time of one halo-exchange round before and after reordering.  A 64x64
// process grid (4096 processes) on the paper's machine, placed block and
// cyclic.

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "common/table.hpp"
#include "graph/apppattern.hpp"
#include "simmpi/engine.hpp"

namespace {

using namespace tarr;

/// One halo-exchange round: every edge of the pattern carries msg bytes in
/// both directions, all concurrently (one stage).
Usec halo_round(const simmpi::Communicator& comm,
                const graph::WeightedGraph& pattern, Bytes msg) {
  simmpi::Engine eng(comm, simmpi::CostConfig{}, simmpi::ExecMode::Timed,
                     msg, 2);
  eng.begin_stage();
  for (const auto& e : pattern.edges()) {
    eng.copy(e.u, 0, e.v, 1, 1);
    eng.copy(e.v, 0, e.u, 1, 1);
  }
  eng.end_stage();
  return eng.total();
}

}  // namespace

int main() {
  using namespace tarr::bench;

  BenchWorld world(kPaperNodes);
  const int p = kPaperProcs;
  const auto pattern = graph::stencil2d_pattern(64, 64);

  std::printf(
      "Extension — general graph mapping for a 64x64 2D halo exchange,\n"
      "%d processes; time of one exchange round (all edges concurrent)\n\n",
      p);

  TextTable t;
  t.set_header({"layout", "msg", "initial(us)", "bisection impr %",
                "greedy impr %"});
  for (const auto& spec : simmpi::all_layouts()) {
    const auto comm = world.comm(p, spec);
    const auto bis = world.framework.reorder_for_graph(
        comm, pattern, core::ReorderFramework::GraphMapperKind::Bisection);
    const auto greedy = world.framework.reorder_for_graph(
        comm, pattern, core::ReorderFramework::GraphMapperKind::Greedy);
    for (Bytes msg : {Bytes(4 * 1024), Bytes(64 * 1024)}) {
      const Usec before = halo_round(comm, pattern, msg);
      t.add_row({simmpi::to_string(spec), TextTable::bytes(msg),
                 TextTable::num(before, 1),
                 TextTable::num(improvement_percent(
                                    before, halo_round(bis.comm, pattern, msg)),
                                1),
                 TextTable::num(
                     improvement_percent(
                         before, halo_round(greedy.comm, pattern, msg)),
                     1)});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nRecursive bipartitioning finds 2D tiles for the uniform stencil;\n"
      "the greedy heaviest-edge mapper packs rows, which only helps when\n"
      "the initial placement is worse than rows (cyclic layouts).\n");
  return 0;
}
