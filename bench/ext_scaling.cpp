// Extension bench: how do the improvements scale with process count?  The
// paper reports 4096 processes only; the simulator can sweep the job size
// on the same machine model (512/1024/2048/4096 processes on GPC).

#include <cstdio>

#include "bench/sweep.hpp"
#include "common/table.hpp"
#include "core/topoallgather.hpp"
#include "simmpi/layout.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;
  using collectives::OrderFix;
  using core::MapperKind;

  std::printf(
      "Extension — improvement vs process count (GPC machine model),\n"
      "Hrstc+initComm over the MVAPICH-like default\n\n");

  TextTable t;
  t.set_header({"procs", "nodes", "RD 1KB impr %", "RD 16KB impr %",
                "ring 64KB block impr %", "ring 64KB cyclic impr %"});
  for (int nodes : {64, 128, 256, 512}) {
    const topology::Machine machine = topology::Machine::gpc(nodes);
    core::ReorderFramework framework(machine);
    const int p = machine.total_cores();

    auto improvement = [&](const simmpi::LayoutSpec& spec, Bytes msg) {
      const simmpi::Communicator comm(machine,
                                      simmpi::make_layout(machine, p, spec));
      core::TopoAllgatherConfig def;
      def.mapper = MapperKind::None;
      core::TopoAllgather base(framework, comm, def);
      core::TopoAllgatherConfig heu;
      heu.mapper = MapperKind::Heuristic;
      heu.fix = OrderFix::InitComm;
      core::TopoAllgather h(framework, comm, heu);
      return improvement_percent(base.latency(msg), h.latency(msg));
    };

    const simmpi::LayoutSpec block{};
    const simmpi::LayoutSpec cyclic{simmpi::NodeOrder::Cyclic,
                                    simmpi::SocketOrder::Bunch};
    t.add_row({std::to_string(p), std::to_string(nodes),
               TextTable::num(improvement(block, 1024), 1),
               TextTable::num(improvement(block, 16 * 1024), 1),
               TextTable::num(improvement(block, 64 * 1024), 1),
               TextTable::num(improvement(cyclic, 64 * 1024), 1)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
