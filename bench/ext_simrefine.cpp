// Extension bench: simulation-guided refinement on top of the heuristics.
// The fine-tuned heuristics optimize a weighted-distance proxy; the refiner
// hill-climbs the *predicted latency* itself.  How much is left on the
// table after RDMH, and at what search cost?

#include <cstdio>

#include "bench/sweep.hpp"
#include "common/table.hpp"
#include "common/permutation.hpp"
#include "core/refine.hpp"
#include "simmpi/layout.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;
  using collectives::AllgatherAlgo;
  using collectives::OrderFix;

  // Moderate scale so each of the ~400 objective evaluations stays cheap.
  const topology::Machine machine = topology::Machine::gpc(64);
  core::ReorderFramework framework(machine);
  const int p = machine.total_cores();
  const simmpi::Communicator comm(
      machine, simmpi::make_layout(machine, p, simmpi::LayoutSpec{}));
  const Bytes msg = 8 * 1024;
  const auto objective = core::allgather_objective(
      AllgatherAlgo::RecursiveDoubling, msg, OrderFix::None,
      simmpi::CostConfig{});

  std::printf(
      "Extension — simulation-guided refinement, %d processes,\n"
      "block-bunch initial, recursive-doubling allgather of %lld B\n\n",
      p, static_cast<long long>(msg));

  TextTable t;
  t.set_header({"start", "objective before(us)", "after(us)", "gain %",
                "swaps accepted", "search(s)"});

  core::RefineOptions opts;
  opts.max_swaps = 400;

  // Start 1: the identity (no heuristic) — refinement alone.
  {
    const core::ReorderedComm start{comm, identity_permutation(p), 0.0};
    const auto res =
        core::refine_by_simulation(comm, start, objective, opts);
    t.add_row({"identity", TextTable::num(res.start_objective, 1),
               TextTable::num(res.final_objective, 1),
               TextTable::num(improvement_percent(res.start_objective,
                                                  res.final_objective),
                              1),
               std::to_string(res.accepted_swaps),
               TextTable::num(res.mapping.mapping_seconds, 2)});
  }
  // Start 2: RDMH — what the heuristic leaves behind.
  {
    const auto start =
        framework.reorder(comm, mapping::Pattern::RecursiveDoubling);
    const auto res =
        core::refine_by_simulation(comm, start, objective, opts);
    t.add_row({"RDMH", TextTable::num(res.start_objective, 1),
               TextTable::num(res.final_objective, 1),
               TextTable::num(improvement_percent(res.start_objective,
                                                  res.final_objective),
                              1),
               std::to_string(res.accepted_swaps),
               TextTable::num(res.mapping.mapping_seconds, 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nThe heuristic's closed-form mapping costs milliseconds; buying the\n"
      "remaining few percent by search costs seconds of simulations — the\n"
      "trade-off the paper's overhead argument (Fig 7) is about.\n");
  return 0;
}
