// Google-benchmark micro-benchmarks of the mapping layer: distance
// extraction, each fine-tuned heuristic, and the general-purpose
// comparators, across process counts (the raw material behind Fig 7).

#include <benchmark/benchmark.h>

#include <memory>

#include "mapping/comparators.hpp"
#include "mapping/heuristics.hpp"
#include "simmpi/layout.hpp"
#include "topology/distance.hpp"

namespace {

using namespace tarr;

struct MapFixture {
  topology::Machine machine;
  topology::DistanceMatrix dist;
  std::vector<int> initial;

  explicit MapFixture(int nodes)
      : machine(topology::Machine::gpc(nodes)),
        dist(topology::extract_distances(machine)) {
    const auto cores = simmpi::make_layout(machine, machine.total_cores(),
                                           simmpi::LayoutSpec{});
    initial.assign(cores.begin(), cores.end());
  }
};

MapFixture& fixture(int nodes) {
  // One fixture per machine size, built lazily and reused across benchmarks.
  static std::map<int, std::unique_ptr<MapFixture>> cache;
  auto& slot = cache[nodes];
  if (!slot) slot = std::make_unique<MapFixture>(nodes);
  return *slot;
}

void BM_DistanceExtraction(benchmark::State& state) {
  const topology::Machine m =
      topology::Machine::gpc(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::extract_distances(m));
  }
  state.SetLabel(std::to_string(m.total_cores()) + " cores");
}
BENCHMARK(BM_DistanceExtraction)->Arg(16)->Arg(64)->Arg(128);

template <typename MakeMapper>
void run_mapper_benchmark(benchmark::State& state, MakeMapper make) {
  MapFixture& f = fixture(static_cast<int>(state.range(0)));
  const auto mapper = make();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    benchmark::DoNotOptimize(mapper->map(f.initial, f.dist, rng));
  }
  state.SetLabel(std::to_string(f.initial.size()) + " ranks");
}

void BM_Rdmh(benchmark::State& state) {
  run_mapper_benchmark(state, [] {
    return mapping::make_heuristic(mapping::Pattern::RecursiveDoubling);
  });
}
BENCHMARK(BM_Rdmh)->Arg(16)->Arg(64)->Arg(128);

void BM_Rmh(benchmark::State& state) {
  run_mapper_benchmark(
      state, [] { return mapping::make_heuristic(mapping::Pattern::Ring); });
}
BENCHMARK(BM_Rmh)->Arg(16)->Arg(64)->Arg(128);

void BM_Bbmh(benchmark::State& state) {
  run_mapper_benchmark(state, [] {
    return mapping::make_heuristic(mapping::Pattern::BinomialBcast);
  });
}
BENCHMARK(BM_Bbmh)->Arg(16)->Arg(64)->Arg(128);

void BM_Bgmh(benchmark::State& state) {
  run_mapper_benchmark(state, [] {
    return mapping::make_heuristic(mapping::Pattern::BinomialGather);
  });
}
BENCHMARK(BM_Bgmh)->Arg(16)->Arg(64)->Arg(128);

void BM_GreedyGraph(benchmark::State& state) {
  run_mapper_benchmark(state, [] {
    return mapping::make_greedy_graph_mapper(
        mapping::Pattern::RecursiveDoubling);
  });
}
BENCHMARK(BM_GreedyGraph)->Arg(16)->Arg(64);

void BM_ScotchLike(benchmark::State& state) {
  run_mapper_benchmark(state, [] {
    return mapping::make_scotch_like_mapper(
        mapping::Pattern::RecursiveDoubling);
  });
}
BENCHMARK(BM_ScotchLike)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
