// Google-benchmark micro-benchmarks of the mapping layer: distance
// extraction, each fine-tuned heuristic, and the general-purpose
// comparators, across process counts (the raw material behind Fig 7).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "mapping/comparators.hpp"
#include "mapping/heuristics.hpp"
#include "prof/prof.hpp"
#include "simmpi/layout.hpp"
#include "topology/distance.hpp"

namespace {

using namespace tarr;

struct MapFixture {
  topology::Machine machine;
  topology::DistanceMatrix dist;
  std::vector<int> initial;

  explicit MapFixture(int nodes)
      : machine(topology::Machine::gpc(nodes)),
        dist(topology::extract_distances(machine)) {
    const auto cores = simmpi::make_layout(machine, machine.total_cores(),
                                           simmpi::LayoutSpec{});
    initial.assign(cores.begin(), cores.end());
  }
};

MapFixture& fixture(int nodes) {
  // One fixture per machine size, built lazily and reused across benchmarks.
  static std::map<int, std::unique_ptr<MapFixture>> cache;
  auto& slot = cache[nodes];
  if (!slot) slot = std::make_unique<MapFixture>(nodes);
  return *slot;
}

void BM_DistanceExtraction(benchmark::State& state) {
  const topology::Machine m =
      topology::Machine::gpc(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::extract_distances(m));
  }
  state.SetLabel(std::to_string(m.total_cores()) + " cores");
}
BENCHMARK(BM_DistanceExtraction)->Arg(16)->Arg(64)->Arg(128);

template <typename MakeMapper>
void run_mapper_benchmark(benchmark::State& state, MakeMapper make) {
  MapFixture& f = fixture(static_cast<int>(state.range(0)));
  const auto mapper = make();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    benchmark::DoNotOptimize(mapper->map(f.initial, f.dist, rng));
  }
  state.SetLabel(std::to_string(f.initial.size()) + " ranks");
}

void BM_Rdmh(benchmark::State& state) {
  run_mapper_benchmark(state, [] {
    return mapping::make_heuristic(mapping::Pattern::RecursiveDoubling);
  });
}
BENCHMARK(BM_Rdmh)->Arg(16)->Arg(64)->Arg(128);

void BM_Rmh(benchmark::State& state) {
  run_mapper_benchmark(
      state, [] { return mapping::make_heuristic(mapping::Pattern::Ring); });
}
BENCHMARK(BM_Rmh)->Arg(16)->Arg(64)->Arg(128);

void BM_Bbmh(benchmark::State& state) {
  run_mapper_benchmark(state, [] {
    return mapping::make_heuristic(mapping::Pattern::BinomialBcast);
  });
}
BENCHMARK(BM_Bbmh)->Arg(16)->Arg(64)->Arg(128);

void BM_Bgmh(benchmark::State& state) {
  run_mapper_benchmark(state, [] {
    return mapping::make_heuristic(mapping::Pattern::BinomialGather);
  });
}
BENCHMARK(BM_Bgmh)->Arg(16)->Arg(64)->Arg(128);

void BM_GreedyGraph(benchmark::State& state) {
  run_mapper_benchmark(state, [] {
    return mapping::make_greedy_graph_mapper(
        mapping::Pattern::RecursiveDoubling);
  });
}
BENCHMARK(BM_GreedyGraph)->Arg(16)->Arg(64);

void BM_ScotchLike(benchmark::State& state) {
  run_mapper_benchmark(state, [] {
    return mapping::make_scotch_like_mapper(
        mapping::Pattern::RecursiveDoubling);
  });
}
BENCHMARK(BM_ScotchLike)->Arg(16)->Arg(64);

// Work-counter twins: the same phases measured in deterministic tarr::prof
// counters per iteration instead of wall time.  These numbers are identical
// on every machine — they are what to compare across hosts, and what the
// fig7 scaling harness gates on.
template <typename MakeMapper>
void run_mapper_work_benchmark(benchmark::State& state, MakeMapper make,
                               std::initializer_list<const char*> counters) {
  MapFixture& f = fixture(static_cast<int>(state.range(0)));
  const auto mapper = make();
  prof::Profiler profiler;
  prof::ScopedThreadProfiler guard(&profiler);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    benchmark::DoNotOptimize(mapper->map(f.initial, f.dist, rng));
  }
  const prof::Profile p = profiler.snapshot();
  const double iters = static_cast<double>(state.iterations());
  for (const char* c : counters)
    state.counters[c] =
        benchmark::Counter(iters > 0 ? p.counter_total(c) / iters : 0.0);
  state.SetLabel(std::to_string(f.initial.size()) + " ranks");
}

void BM_RdmhWork(benchmark::State& state) {
  run_mapper_work_benchmark(
      state,
      [] { return mapping::make_heuristic(mapping::Pattern::RecursiveDoubling); },
      {"mapping.scan_steps", "mapping.placements"});
}
BENCHMARK(BM_RdmhWork)->Arg(16)->Arg(64)->Arg(128);

void BM_ScotchLikeWork(benchmark::State& state) {
  run_mapper_work_benchmark(
      state,
      [] {
        return mapping::make_scotch_like_mapper(
            mapping::Pattern::RecursiveDoubling);
      },
      {"bisection.calls", "bisection.swap_evals"});
}
BENCHMARK(BM_ScotchLikeWork)->Arg(16)->Arg(64);

void BM_DistanceExtractionWork(benchmark::State& state) {
  const topology::Machine m =
      topology::Machine::gpc(static_cast<int>(state.range(0)));
  prof::Profiler profiler;
  prof::ScopedThreadProfiler guard(&profiler);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::extract_distances(m));
  }
  const prof::Profile p = profiler.snapshot();
  const double iters = static_cast<double>(state.iterations());
  state.counters["distance.cells"] = benchmark::Counter(
      iters > 0 ? p.counter_total("distance.cells") / iters : 0.0);
  state.SetLabel(std::to_string(m.total_cores()) + " cores");
}
BENCHMARK(BM_DistanceExtractionWork)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
