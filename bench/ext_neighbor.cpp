// Extension bench: the neighbor-exchange allgather (half the stages of the
// ring) under rank reordering.  Its pattern is the ring graph, so RMH is
// the matching heuristic — the same reorder serves both algorithms.

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "collectives/allgather.hpp"
#include "collectives/neighbor.hpp"
#include "common/permutation.hpp"
#include "common/table.hpp"
#include "simmpi/engine.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;

  BenchWorld world(kPaperNodes);
  const int p = kPaperProcs;
  const simmpi::LayoutSpec cyclic{simmpi::NodeOrder::Cyclic,
                                  simmpi::SocketOrder::Bunch};
  const auto comm = world.comm(p, cyclic);
  const auto rc = world.framework.reorder(comm, mapping::Pattern::Ring);

  std::printf(
      "Extension — neighbor-exchange allgather vs ring under RMH,\n"
      "%d processes, cyclic-bunch initial mapping\n\n",
      p);

  auto ring = [&](const simmpi::Communicator& c,
                  const std::vector<Rank>& oldrank, Bytes msg) {
    simmpi::Engine eng(c, simmpi::CostConfig{}, simmpi::ExecMode::Timed, msg,
                       p);
    return collectives::run_allgather(
        eng,
        collectives::AllgatherOptions{collectives::AllgatherAlgo::Ring,
                                      collectives::OrderFix::None},
        oldrank);
  };
  auto neighbor = [&](const simmpi::Communicator& c,
                      const std::vector<Rank>& oldrank, Bytes msg) {
    simmpi::Engine eng(c, simmpi::CostConfig{}, simmpi::ExecMode::Timed, msg,
                       p);
    return collectives::run_allgather_neighbor(eng, oldrank);
  };

  const auto id = identity_permutation(p);
  TextTable t;
  t.set_header({"msg", "ring(us)", "ring+RMH(us)", "neighbor(us)",
                "neighbor+RMH(us)"});
  for (Bytes msg : {Bytes(16 * 1024), Bytes(64 * 1024), Bytes(256 * 1024)}) {
    t.add_row({TextTable::bytes(msg), TextTable::num(ring(comm, id, msg), 1),
               TextTable::num(ring(rc.comm, rc.oldrank, msg), 1),
               TextTable::num(neighbor(comm, id, msg), 1),
               TextTable::num(neighbor(rc.comm, rc.oldrank, msg), 1)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nNeighbor exchange runs p/2 stages of 2-block transfers (same total\n"
      "volume as the ring's p-1 single-block stages) and profits from the\n"
      "same RMH reorder because both patterns are the ring graph.\n");
  return 0;
}
