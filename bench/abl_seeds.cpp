// Ablation: robustness to tie-breaking randomness.  Algorithm 1 step 5
// breaks distance ties randomly; the paper's results implicitly assume the
// outcome does not hinge on which tied core gets picked.  This bench runs
// RDMH and RMH under 16 different seeds and reports the spread of the
// resulting improvements.

#include <cstdio>

#include "bench/sweep.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/topoallgather.hpp"
#include "simmpi/layout.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;
  using collectives::OrderFix;
  using core::MapperKind;

  const topology::Machine machine = topology::Machine::gpc(512);
  const int p = 4096;
  const simmpi::LayoutSpec cyclic{simmpi::NodeOrder::Cyclic,
                                  simmpi::SocketOrder::Scatter};

  std::printf(
      "Ablation — sensitivity to the random tie-breaking seed,\n"
      "%d processes, cyclic-scatter initial mapping, 16 seeds\n\n",
      p);

  TextTable t;
  t.set_header({"regime", "msg", "impr %% min", "mean", "max", "stddev"});
  for (Bytes msg : {Bytes(1024), Bytes(64 * 1024)}) {
    StatAccumulator acc;
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      core::ReorderFramework::Options opts;
      opts.seed = seed;
      core::ReorderFramework framework(machine, opts);
      const simmpi::Communicator comm(
          machine, simmpi::make_layout(machine, p, cyclic));
      core::TopoAllgatherConfig def;
      def.mapper = MapperKind::None;
      core::TopoAllgather base(framework, comm, def);
      core::TopoAllgatherConfig heu;
      heu.mapper = MapperKind::Heuristic;
      heu.fix = OrderFix::InitComm;
      core::TopoAllgather h(framework, comm, heu);
      acc.add(improvement_percent(base.latency(msg), h.latency(msg)));
    }
    t.add_row({msg < 32 * 1024 ? "RDMH" : "RMH", TextTable::bytes(msg),
               TextTable::num(acc.min(), 2), TextTable::num(acc.mean(), 2),
               TextTable::num(acc.max(), 2),
               TextTable::num(acc.stddev(), 3)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nA small spread means the heuristics' quality comes from their\n"
      "selection/reference rules, not from lucky tie resolution.\n");
  return 0;
}
