// Google-benchmark micro-benchmarks of the simulation engine itself: how
// fast the simulator evaluates each collective at various scales.  These
// guard the tool's own performance (a 4096-process Fig 3 sweep re-prices
// thousands of stages), not the simulated latencies.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "collectives/allgather.hpp"
#include "collectives/hierarchical.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/layout.hpp"

namespace {

using namespace tarr;

const simmpi::Communicator& comm_for(int nodes) {
  struct World {
    topology::Machine machine;
    simmpi::Communicator comm;
    explicit World(int n)
        : machine(topology::Machine::gpc(n)),
          comm(machine, simmpi::make_layout(machine, machine.total_cores(),
                                            simmpi::LayoutSpec{})) {}
  };
  static std::map<int, std::unique_ptr<World>> cache;
  auto& slot = cache[nodes];
  if (!slot) slot = std::make_unique<World>(nodes);
  return slot->comm;
}

void BM_SimulateRecursiveDoubling(benchmark::State& state) {
  const auto& comm = comm_for(static_cast<int>(state.range(0)));
  const int p = comm.size();
  for (auto _ : state) {
    simmpi::Engine eng(comm, simmpi::CostConfig{}, simmpi::ExecMode::Timed,
                       4096, p);
    benchmark::DoNotOptimize(collectives::run_allgather(
        eng,
        collectives::AllgatherOptions{
            collectives::AllgatherAlgo::RecursiveDoubling,
            collectives::OrderFix::None}));
  }
  state.SetLabel(std::to_string(p) + " ranks");
}
BENCHMARK(BM_SimulateRecursiveDoubling)->Arg(16)->Arg(64)->Arg(256)->Arg(512);

void BM_SimulateRing(benchmark::State& state) {
  const auto& comm = comm_for(static_cast<int>(state.range(0)));
  const int p = comm.size();
  for (auto _ : state) {
    simmpi::Engine eng(comm, simmpi::CostConfig{}, simmpi::ExecMode::Timed,
                       4096, p);
    benchmark::DoNotOptimize(collectives::run_allgather(
        eng, collectives::AllgatherOptions{collectives::AllgatherAlgo::Ring,
                                           collectives::OrderFix::None}));
  }
  state.SetLabel(std::to_string(p) + " ranks");
}
BENCHMARK(BM_SimulateRing)->Arg(16)->Arg(64)->Arg(256)->Arg(512);

void BM_SimulateHierarchical(benchmark::State& state) {
  const auto& comm = comm_for(static_cast<int>(state.range(0)));
  const int p = comm.size();
  for (auto _ : state) {
    simmpi::Engine eng(comm, simmpi::CostConfig{}, simmpi::ExecMode::Timed,
                       4096, p);
    benchmark::DoNotOptimize(collectives::run_hier_allgather(
        eng, collectives::HierAllgatherOptions{}));
  }
  state.SetLabel(std::to_string(p) + " ranks");
}
BENCHMARK(BM_SimulateHierarchical)->Arg(16)->Arg(64)->Arg(256);

void BM_EngineStageThroughput(benchmark::State& state) {
  // Raw cost of pricing one stage with `range` concurrent inter-node
  // transfers.
  const auto& comm = comm_for(64);
  const int transfers = static_cast<int>(state.range(0));
  simmpi::Engine eng(comm, simmpi::CostConfig{}, simmpi::ExecMode::Timed,
                     65536, 1);
  const int p = comm.size();
  for (auto _ : state) {
    eng.begin_stage();
    for (int t = 0; t < transfers; ++t)
      eng.copy(t % p, 0, (t + p / 2) % p, 0, 1);
    benchmark::DoNotOptimize(eng.end_stage());
  }
  state.SetItemsProcessed(state.iterations() * transfers);
}
BENCHMARK(BM_EngineStageThroughput)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
