// Fig 8 (extension): probed re-mapping under uncertain, churning topologies.
//
// The paper's pipeline assumes exact distances and a static fabric.  This
// harness drops both assumptions and asks what topology awareness is still
// worth when distances must be *probed* (noisy pairwise latency samples)
// and the fabric *churns* (seeded multi-tenant background congestion):
//
//   identity — the resource manager's block layout, never reordered;
//   oracle   — RMH re-run every epoch on exact effective distances (free
//              perfect knowledge: the ceiling);
//   probed   — the tarr::probe adaptive controller (noisy probes, drift
//              detection with hysteresis, identity fallback).
//
// Swept over probe noise levels at fixed churn, on the ML-style ring
// allreduce and a rotation alltoall.  A final run forces total probe
// failure (timeout_prob = 1) and must complete via the identity fallback.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/fixtures.hpp"
#include "common/table.hpp"
#include "probe/probe.hpp"

namespace {

using namespace tarr;
using namespace tarr::bench;

probe::ScenarioConfig base_config(int nodes, int epochs) {
  probe::ScenarioConfig cfg;
  cfg.num_nodes = nodes;
  cfg.epochs = epochs;
  cfg.block_bytes = 16 * 1024;
  cfg.congestion.seed = 7;
  cfg.congestion.link_prob = 0.35;
  cfg.congestion.min_factor = 0.2;
  cfg.congestion.max_factor = 0.6;
  cfg.congestion.churn = 0.5;
  cfg.controller.probe.seed = 11;
  cfg.controller.probe.samples_per_pair = 5;
  cfg.controller.drift_threshold = 0.03;
  cfg.controller.hysteresis = 2;
  cfg.controller.cooldown = 1;
  return cfg;
}

std::string pct(double v) { return tarr::TextTable::num(v, 2); }

}  // namespace

int main() {
  const int nodes = bench_nodes(32);
  const int epochs = smoke() ? 6 : 10;
  const std::vector<double> noise_levels = {0.02, 0.2, 0.5};

  SnapshotEmitter snap("fig8_probed");
  snap.set_meta("nodes", std::to_string(nodes));
  snap.set_meta("epochs", std::to_string(epochs));

  std::printf(
      "Fig 8 (extension) — probed re-mapping vs oracle vs identity\n"
      "%d nodes, %d epochs, churn %.2f, ring-allreduce + alltoall\n\n",
      nodes, epochs, 0.5);

  tarr::TextTable t;
  t.set_header({"noise", "pattern", "identity(us)", "oracle(us)", "probed(us)",
                "gain%", "oracle_gap%", "remaps", "fallbacks"});

  bool ok = true;
  for (std::size_t ni = 0; ni < noise_levels.size(); ++ni) {
    probe::ScenarioConfig cfg = base_config(nodes, epochs);
    cfg.controller.probe.noise = noise_levels[ni];
    cfg.controller.probe.outlier_prob = 0.1;
    // Decorrelate the noise draws across sweep points: with a shared seed
    // the same uniforms are merely rescaled, so relative orderings within
    // equal-truth distance groups would never change and every noise level
    // would produce the identical mapping.
    cfg.controller.probe.seed = 11 + 977 * static_cast<std::uint64_t>(ni);
    const probe::ScenarioResult res = probe::run_probed_scenario(cfg);
    for (const probe::PatternSummary& p : res.patterns) {
      t.add_row({pct(noise_levels[ni]), p.pattern, pct(p.identity_mean),
                 pct(p.oracle_mean), pct(p.probed_mean),
                 pct(p.probed_gain_pct()), pct(p.oracle_gap_pct()),
                 std::to_string(p.remaps), std::to_string(p.fallbacks)});
      const std::string tag =
          p.pattern + "_noise" + tarr::TextTable::num(noise_levels[ni], 2);
      // Gate the headline: what probing buys over never reordering.  The
      // oracle gap is a trend (it shrinks as noise does; asserted below for
      // the ring, not gated per-cell).
      snap.add_metric("gain_pct_" + tag, p.probed_gain_pct(), "percent",
                      /*higher_is_better=*/true);
      snap.add_metric("oracle_gap_pct_" + tag, p.oracle_gap_pct(), "percent",
                      /*higher_is_better=*/false, /*gate=*/false);
      snap.add_metric("probed_usec_" + tag, p.probed_mean, "usec",
                      /*higher_is_better=*/false);
      // The robustness claim: probed beats identity on the ring workload
      // (the oracle gap per noise level is tracked as a trend metric).
      if (p.pattern == "ring-allreduce" && p.probed_gain_pct() <= 0.0) {
        std::fprintf(stderr,
                     "FAIL: probed did not beat identity at noise %.2f\n",
                     noise_levels[ni]);
        ok = false;
      }
    }
  }

  // Forced probe failure: every measurement times out, the controller must
  // fall back to identity and the scenario must still complete.
  probe::ScenarioConfig fail_cfg = base_config(nodes, epochs);
  fail_cfg.controller.probe.timeout_prob = 1.0;
  const probe::ScenarioResult fail_res = probe::run_probed_scenario(fail_cfg);
  int fallbacks = 0;
  for (const probe::PatternSummary& p : fail_res.patterns) {
    fallbacks += p.fallbacks;
    t.add_row({"FAIL-PROBE", p.pattern, pct(p.identity_mean),
               pct(p.oracle_mean), pct(p.probed_mean),
               pct(p.probed_gain_pct()), pct(p.oracle_gap_pct()),
               std::to_string(p.remaps), std::to_string(p.fallbacks)});
    // With probing dead, probed degrades exactly to identity.
    if (p.probed_mean != p.identity_mean) {
      std::fprintf(stderr,
                   "FAIL: fallback did not degrade to identity (%s)\n",
                   p.pattern.c_str());
      ok = false;
    }
    if (p.fallbacks == 0) {
      std::fprintf(stderr, "FAIL: forced probe failure took no fallback\n");
      ok = false;
    }
  }
  snap.add_metric("fail_probe_fallbacks", fallbacks, "count",
                  /*higher_is_better=*/false, /*gate=*/false);

  std::printf("%s", t.render().c_str());
  std::printf(
      "\nFAIL-PROBE row: timeout_prob = 1 — probing is impossible; the\n"
      "controller degrades to the identity mapping instead of failing.\n");

  snap.dump();
  return ok ? 0 : 1;
}
