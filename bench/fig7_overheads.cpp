// Fig 7 regeneration: the two overhead components of run-time rank
// reordering, measured in wall-clock seconds on this machine:
//   (a) one-time physical distance extraction, for 1024/2048/4096 processes
//       (the paper reports linear scaling, ~3.3 s at 4096 on GPC);
//   (b) time spent by the mapping algorithm itself — the paper's fine-tuned
//       heuristics vs the general-purpose graph mappers (Scotch-like, and
//       additionally the Hoefler-Snir-style greedy), per pattern.
//
// Section (c) is the tarr::prof scaling-curve harness: the same phases
// measured in *deterministic work counters* (distance cells, bisection swap
// evaluations, priced transfers) swept over rank counts and fitted to a
// power law.  Unlike (a)/(b) these metrics are byte-stable across machines,
// so they are gated in the perf snapshot; the fitted exponents are the
// empirical-complexity baseline recorded in docs/OBSERVABILITY.md.

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/fixtures.hpp"
#include "common/permutation.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/refine.hpp"
#include "mapping/comparators.hpp"
#include "mapping/heuristics.hpp"
#include "prof/prof.hpp"
#include "simmpi/layout.hpp"
#include "topology/distance.hpp"

namespace {

using namespace tarr;

double time_mapper(const mapping::Mapper& m, const std::vector<int>& initial,
                   const topology::DistanceMatrix& d, int reps) {
  StatAccumulator acc;
  for (int r = 0; r < reps; ++r) {
    Rng rng(1 + r);
    WallTimer t;
    const auto result = m.map(initial, d, rng);
    acc.add(t.seconds());
    if (result.empty()) std::abort();  // keep the call observable
  }
  return acc.mean();
}

/// Run `body` under a fresh ambient profiler and return its counter profile.
prof::Profile profile_phase(const std::function<void()>& body) {
  prof::Profiler profiler;
  prof::ScopedThreadProfiler guard(&profiler);
  body();
  return profiler.snapshot();
}

}  // namespace

int main() {
  using namespace tarr::bench;

  // Everything this harness measures is wall-clock on the host machine, so
  // every snapshot metric is gate=false: the trajectory is worth charting,
  // but CI machines are far too noisy to fail a build over it.
  const std::vector<int> node_counts =
      smoke() ? std::vector<int>{4, 8, 16} : std::vector<int>{128, 256, 512};
  SnapshotEmitter snapshot("fig7_overheads");
  snapshot.set_meta("max_nodes", std::to_string(node_counts.back()));

  std::printf("Fig 7(a) — one-time distance extraction overhead\n");
  TextTable ta;
  ta.set_header({"processes", "nodes", "extraction(s)"});
  for (int nodes : node_counts) {
    const topology::Machine m = topology::Machine::gpc(nodes);
    WallTimer t;
    const auto d = topology::extract_distances(m);
    const double secs = t.seconds();
    ta.add_row({std::to_string(nodes * 8), std::to_string(nodes),
                TextTable::num(secs, 3)});
    snapshot.add_metric("extraction_s.n" + std::to_string(nodes), secs,
                        "seconds", /*higher_is_better=*/false,
                        /*gate=*/false);
    if (d.size() != m.total_cores()) return 1;
  }
  std::printf("%s\n", ta.render().c_str());

  std::printf("Fig 7(b) — mapping algorithm overhead (seconds, mean of 3)\n");
  TextTable tb;
  tb.set_header({"processes", "pattern", "heuristic", "greedy-graph",
                 "scotch-like"});
  for (int nodes : node_counts) {
    const int p = nodes * 8;
    const topology::Machine m = topology::Machine::gpc(nodes);
    const auto dist = topology::extract_distances(m);
    const auto cores = simmpi::make_layout(m, p, simmpi::LayoutSpec{});
    const std::vector<int> initial(cores.begin(), cores.end());

    for (auto pattern :
         {mapping::Pattern::RecursiveDoubling, mapping::Pattern::Ring}) {
      const auto heuristic = mapping::make_heuristic(pattern);
      const auto greedy = mapping::make_greedy_graph_mapper(pattern);
      const auto scotch = mapping::make_scotch_like_mapper(pattern);
      const double h = time_mapper(*heuristic, initial, dist, 3);
      const double g = time_mapper(*greedy, initial, dist, 3);
      const double s = time_mapper(*scotch, initial, dist, 3);
      const std::string key = std::string(mapping::to_string(pattern)) + ".n" +
                              std::to_string(nodes);
      snapshot.add_metric("heuristic_s." + key, h, "seconds",
                          /*higher_is_better=*/false, /*gate=*/false);
      snapshot.add_metric("greedy_s." + key, g, "seconds",
                          /*higher_is_better=*/false, /*gate=*/false);
      snapshot.add_metric("scotch_s." + key, s, "seconds",
                          /*higher_is_better=*/false, /*gate=*/false);
      tb.add_row({std::to_string(p), mapping::to_string(pattern),
                  TextTable::num(h, 4), TextTable::num(g, 4),
                  TextTable::num(s, 4)});
    }
  }
  std::printf("%s\n", tb.render().c_str());

  // (c) Scaling curves: deterministic per-phase work counters (tarr::prof).
  // Each phase runs under its own fresh profiler so its counters are not
  // polluted by the others; the tracked counter per phase is the one that
  // dominates its asymptotic cost.  All of these are gate=true — they are
  // exact integers, identical on every machine.
  std::printf("Fig 7(c) — scaling curves (deterministic work counters)\n");
  const std::vector<std::pair<std::string, std::string>> phases = {
      {"distance-extraction", "distance.cells"},
      {"bisection", "bisection.swap_evals"},
      {"refinement", "cost.transfers_priced"},
      {"engine-pricing", "cost.transfers_priced"},
  };
  std::map<std::string, std::vector<prof::ScalingPoint>> curves;
  for (int nodes : node_counts) {
    const int p = nodes * 8;
    const topology::Machine m = topology::Machine::gpc(nodes);
    const auto dist = topology::extract_distances(m);
    const auto cores = simmpi::make_layout(m, p, simmpi::LayoutSpec{});
    const std::vector<int> initial(cores.begin(), cores.end());
    const simmpi::Communicator comm(m, cores);
    const auto objective = core::allgather_objective(
        collectives::AllgatherAlgo::RecursiveDoubling, 8 * 1024,
        collectives::OrderFix::None, simmpi::CostConfig{});

    std::map<std::string, prof::Profile> by_phase;
    by_phase["distance-extraction"] = profile_phase([&] {
      if (topology::extract_distances(m).size() != m.total_cores())
        std::abort();
    });
    by_phase["bisection"] = profile_phase([&] {
      const auto scotch =
          mapping::make_scotch_like_mapper(mapping::Pattern::RecursiveDoubling);
      Rng rng(1);
      if (scotch->map(initial, dist, rng).empty()) std::abort();
    });
    by_phase["engine-pricing"] = profile_phase([&] {
      if (objective(comm, identity_permutation(p)) <= 0.0) std::abort();
    });
    by_phase["refinement"] = profile_phase([&] {
      core::RefineOptions ropts;
      ropts.max_swaps = 32;  // bounded search: work scales with rank count
      ropts.seed = 1;
      const core::ReorderedComm start{comm, identity_permutation(p), 0.0};
      core::refine_by_simulation(comm, start, objective, ropts);
    });

    for (const auto& [phase, counter] : phases) {
      const double v = by_phase[phase].counter_total(counter);
      snapshot.add_metric(
          "prof." + phase + "." + counter + ".n" + std::to_string(nodes), v,
          "count", /*higher_is_better=*/false, /*gate=*/true);
      curves[phase + "." + counter].push_back(
          prof::ScalingPoint{static_cast<double>(p), v});
    }
  }

  TextTable tc;
  tc.set_header({"phase", "counter", "exponent", "r^2", "empirical"});
  for (const auto& [phase, counter] : phases) {
    const auto& pts = curves[phase + "." + counter];
    const prof::PowerFit fit = prof::fit_power_law(pts);
    tc.add_row({phase, counter,
                fit.valid ? TextTable::num(fit.exponent, 2) : "n/a",
                fit.valid ? TextTable::num(fit.r2, 3) : "n/a",
                prof::classify_complexity(fit)});
    if (fit.valid)
      snapshot.add_metric("prof." + phase + "." + counter + ".exponent",
                          fit.exponent, "exponent",
                          /*higher_is_better=*/false, /*gate=*/true);
  }
  std::printf("%s\n", tc.render().c_str());

  snapshot.dump();

  std::printf(
      "Note: the paper reports ~3.3 s extraction and ~4 ms heuristic mapping\n"
      "at 4096 ranks on GPC hardware; absolute values here reflect this\n"
      "machine, the shapes (linear extraction scaling, heuristics orders of\n"
      "magnitude cheaper than graph mappers) are the reproduced result.\n");
  return 0;
}
