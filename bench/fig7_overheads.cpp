// Fig 7 regeneration: the two overhead components of run-time rank
// reordering, measured in wall-clock seconds on this machine:
//   (a) one-time physical distance extraction, for 1024/2048/4096 processes
//       (the paper reports linear scaling, ~3.3 s at 4096 on GPC);
//   (b) time spent by the mapping algorithm itself — the paper's fine-tuned
//       heuristics vs the general-purpose graph mappers (Scotch-like, and
//       additionally the Hoefler-Snir-style greedy), per pattern.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/fixtures.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "mapping/comparators.hpp"
#include "mapping/heuristics.hpp"
#include "topology/distance.hpp"

namespace {

using namespace tarr;

double time_mapper(const mapping::Mapper& m, const std::vector<int>& initial,
                   const topology::DistanceMatrix& d, int reps) {
  StatAccumulator acc;
  for (int r = 0; r < reps; ++r) {
    Rng rng(1 + r);
    WallTimer t;
    const auto result = m.map(initial, d, rng);
    acc.add(t.seconds());
    if (result.empty()) std::abort();  // keep the call observable
  }
  return acc.mean();
}

}  // namespace

int main() {
  using namespace tarr::bench;

  // Everything this harness measures is wall-clock on the host machine, so
  // every snapshot metric is gate=false: the trajectory is worth charting,
  // but CI machines are far too noisy to fail a build over it.
  const std::vector<int> node_counts =
      smoke() ? std::vector<int>{4, 8, 16} : std::vector<int>{128, 256, 512};
  SnapshotEmitter snapshot("fig7_overheads");
  snapshot.set_meta("max_nodes", std::to_string(node_counts.back()));

  std::printf("Fig 7(a) — one-time distance extraction overhead\n");
  TextTable ta;
  ta.set_header({"processes", "nodes", "extraction(s)"});
  for (int nodes : node_counts) {
    const topology::Machine m = topology::Machine::gpc(nodes);
    WallTimer t;
    const auto d = topology::extract_distances(m);
    const double secs = t.seconds();
    ta.add_row({std::to_string(nodes * 8), std::to_string(nodes),
                TextTable::num(secs, 3)});
    snapshot.add_metric("extraction_s.n" + std::to_string(nodes), secs,
                        "seconds", /*higher_is_better=*/false,
                        /*gate=*/false);
    if (d.size() != m.total_cores()) return 1;
  }
  std::printf("%s\n", ta.render().c_str());

  std::printf("Fig 7(b) — mapping algorithm overhead (seconds, mean of 3)\n");
  TextTable tb;
  tb.set_header({"processes", "pattern", "heuristic", "greedy-graph",
                 "scotch-like"});
  for (int nodes : node_counts) {
    const int p = nodes * 8;
    const topology::Machine m = topology::Machine::gpc(nodes);
    const auto dist = topology::extract_distances(m);
    const auto cores = simmpi::make_layout(m, p, simmpi::LayoutSpec{});
    const std::vector<int> initial(cores.begin(), cores.end());

    for (auto pattern :
         {mapping::Pattern::RecursiveDoubling, mapping::Pattern::Ring}) {
      const auto heuristic = mapping::make_heuristic(pattern);
      const auto greedy = mapping::make_greedy_graph_mapper(pattern);
      const auto scotch = mapping::make_scotch_like_mapper(pattern);
      const double h = time_mapper(*heuristic, initial, dist, 3);
      const double g = time_mapper(*greedy, initial, dist, 3);
      const double s = time_mapper(*scotch, initial, dist, 3);
      const std::string key = std::string(mapping::to_string(pattern)) + ".n" +
                              std::to_string(nodes);
      snapshot.add_metric("heuristic_s." + key, h, "seconds",
                          /*higher_is_better=*/false, /*gate=*/false);
      snapshot.add_metric("greedy_s." + key, g, "seconds",
                          /*higher_is_better=*/false, /*gate=*/false);
      snapshot.add_metric("scotch_s." + key, s, "seconds",
                          /*higher_is_better=*/false, /*gate=*/false);
      tb.add_row({std::to_string(p), mapping::to_string(pattern),
                  TextTable::num(h, 4), TextTable::num(g, 4),
                  TextTable::num(s, 4)});
    }
  }
  std::printf("%s\n", tb.render().c_str());
  snapshot.dump();

  std::printf(
      "Note: the paper reports ~3.3 s extraction and ~4 ms heuristic mapping\n"
      "at 4096 ranks on GPC hardware; absolute values here reflect this\n"
      "machine, the shapes (linear extraction scaling, heuristics orders of\n"
      "magnitude cheaper than graph mappers) are the reproduced result.\n");
  return 0;
}
