// Ablation: which fine-tuned heuristic should reorder the intra-node level
// of a hierarchical allgather?  The paper's §VI-A2 discussion emphasizes
// BGMH (the gather phase); this library defaults to BBMH because the
// phase-3 broadcast moves p/cores_per_node times more bytes per intra-node
// edge.  This bench shows the tradeoff directly.

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;
  using collectives::IntraAlgo;
  using collectives::OrderFix;
  using core::MapperKind;

  BenchWorld world(kPaperNodes);

  std::printf(
      "Ablation — hierarchical intra-node heuristic (BBMH vs BGMH),\n"
      "%d processes, non-linear intra phases, Hrstc+initComm\n\n",
      kPaperProcs);

  const simmpi::LayoutSpec layouts[] = {
      {simmpi::NodeOrder::Block, simmpi::SocketOrder::Bunch},
      {simmpi::NodeOrder::Block, simmpi::SocketOrder::Scatter},
  };
  for (const auto& spec : layouts) {
    core::TopoAllgatherConfig def;
    def.mapper = MapperKind::None;
    def.hierarchical = true;
    auto base = world.path(kPaperProcs, spec, def);

    auto variant = [&](mapping::Pattern intra_pattern) {
      core::TopoAllgatherConfig cfg = def;
      cfg.mapper = MapperKind::Heuristic;
      cfg.fix = OrderFix::InitComm;
      cfg.hier_intra_pattern = intra_pattern;
      return world.path(kPaperProcs, spec, cfg);
    };
    auto bbmh = variant(mapping::Pattern::BinomialBcast);
    auto bgmh = variant(mapping::Pattern::BinomialGather);

    TextTable t;
    t.set_header({"msg", "default(us)", "BBMH intra impr %",
                  "BGMH intra impr %"});
    for (Bytes msg : osu_message_sizes(64)) {
      const double d = base.latency(msg);
      t.add_row({TextTable::bytes(msg), TextTable::num(d, 1),
                 TextTable::num(improvement_percent(d, bbmh.latency(msg)), 1),
                 TextTable::num(improvement_percent(d, bgmh.latency(msg)), 1)});
    }
    std::printf("initial mapping: %s\n%s\n", simmpi::to_string(spec).c_str(),
                t.render().c_str());
  }
  return 0;
}
