// Fig 5 regeneration: application execution time, normalized to the default
// non-hierarchical MVAPICH-like configuration, at 1024 processes under the
// four initial mappings.
//
// The application model reproduces the paper's workload shape: 3 058 calls
// to MPI_Allgather (the count the paper profiles) over a documented message
// mix, interleaved with a fixed compute budget chosen so the default run
// spends half its time in the collective.  Variant runs include the one-time
// rank-reordering overhead (converted from measured wall-clock seconds), as
// the paper's end-to-end measurements do.

#include <cstdio>

#include "bench/appmodel.hpp"
#include "bench/fixtures.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace tarr;
  using namespace tarr::bench;
  using collectives::OrderFix;
  using core::MapperKind;

  const int nodes = bench_nodes(kAppNodes);
  const int procs = bench_procs(nodes);
  BenchWorld world(nodes);
  // Optionally replay a profiled trace: fig5_app_nonhier <trace-file> with
  // one "<msg_bytes> <calls>" pair per line.
  const auto trace =
      argc > 1 ? load_app_trace(argv[1]) : default_app_trace();
  SnapshotEmitter snapshot("fig5_app_nonhier");
  snapshot.set_meta("nodes", std::to_string(nodes));
  snapshot.set_meta("procs", std::to_string(procs));
  snapshot.set_meta("allgather_calls", std::to_string(trace_calls(trace)));

  std::printf(
      "Fig 5 — application execution time (normalized to default),\n"
      "non-hierarchical allgather, %d processes, %d Allgather calls\n\n",
      procs, trace_calls(trace));

  int fig = 0;
  for (const auto& spec : simmpi::all_layouts()) {
    core::TopoAllgatherConfig def;
    def.mapper = MapperKind::None;
    auto base = world.path(procs, spec, def);
    const Usec coll_default = app_collective_time(base, trace);
    const Usec compute = coll_default;  // 50% collective fraction
    const Usec total_default = compute + coll_default;
    const std::string layout = simmpi::to_string(spec);
    snapshot.add_metric(layout + ".default_collective_us", coll_default, "us",
                        /*higher_is_better=*/false);

    TextTable t;
    t.set_header({"variant", "collective(s)", "overhead(s)", "normalized"});
    t.add_row({"default", TextTable::num(coll_default * 1e-6, 3), "0.000",
               "1.00"});
    for (MapperKind kind : {MapperKind::Heuristic, MapperKind::ScotchLike}) {
      core::TopoAllgatherConfig cfg;
      cfg.mapper = kind;
      cfg.fix = OrderFix::InitComm;  // the paper uses initComm for the app
      auto path = world.path(procs, spec, cfg);
      const Usec coll = app_collective_time(path, trace);
      const Usec overhead = path.mapping_seconds() * 1e6;
      const double normalized =
          (compute + coll + overhead) / total_default;
      // Gate on the simulated quantities only; the end-to-end normalized
      // value folds in wall-clock mapping overhead, so it trends but never
      // gates (CI machines are noisy).
      const std::string prefix =
          layout + "." + std::string(core::to_string(kind));
      snapshot.add_metric(prefix + "_collective_us", coll, "us",
                          /*higher_is_better=*/false);
      snapshot.add_metric(prefix + "_normalized_sim",
                          (compute + coll) / total_default, "ratio",
                          /*higher_is_better=*/false);
      snapshot.add_metric(prefix + "_normalized", normalized, "ratio",
                          /*higher_is_better=*/false, /*gate=*/false);
      t.add_row({core::to_string(kind), TextTable::num(coll * 1e-6, 3),
                 TextTable::num(overhead * 1e-6, 3),
                 TextTable::num(normalized, 2)});
    }
    std::printf("Fig 5(%c) — initial mapping: %s\n%s\n",
                static_cast<char>('a' + fig++),
                simmpi::to_string(spec).c_str(), t.render().c_str());
  }
  snapshot.dump();

  std::printf(
      "one-time distance extraction (shared by all variants): %.3f s\n",
      world.framework.distance_extraction_seconds());
  return 0;
}
