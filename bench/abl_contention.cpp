// Ablation: does the paper's story require the contention model?  Fig 3's
// large improvements come from congestion on shared links (5:1 leaf
// blocking, host links, QPI).  With contention modeling disabled (pure
// alpha/hops/beta per transfer) the same reorderings yield much smaller
// gains — showing which part of the result each model component carries.

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "common/table.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;
  using collectives::OrderFix;
  using core::MapperKind;

  const int nodes = bench_nodes(kPaperNodes);
  const int procs = bench_procs(nodes);
  BenchWorld world(nodes);
  const simmpi::LayoutSpec cyclic{simmpi::NodeOrder::Cyclic,
                                  simmpi::SocketOrder::Bunch};
  SnapshotEmitter snapshot("abl_contention");
  snapshot.set_meta("nodes", std::to_string(nodes));
  snapshot.set_meta("procs", std::to_string(procs));

  std::printf(
      "Ablation — contention model on/off, %d processes,\n"
      "cyclic-bunch initial mapping, Hrstc+initComm vs default\n\n",
      procs);

  TextTable t;
  t.set_header({"msg", "impr %% (contention)", "impr %% (no contention)"});
  for (bool contention : {true, false}) (void)contention;  // table below

  auto improvements = [&](bool contention) {
    simmpi::CostConfig cost;
    cost.model_contention = contention;
    core::TopoAllgatherConfig def;
    def.mapper = MapperKind::None;
    def.cost = cost;
    auto base = world.path(procs, cyclic, def);
    core::TopoAllgatherConfig heu = def;
    heu.mapper = MapperKind::Heuristic;
    heu.fix = OrderFix::InitComm;
    auto h = world.path(procs, cyclic, heu);
    std::vector<double> out;
    for (Bytes msg : osu_message_sizes(64, bench_max_msg(256 * 1024))) {
      out.push_back(improvement_percent(base.latency(msg), h.latency(msg)));
    }
    return out;
  };

  const auto with_c = improvements(true);
  const auto without_c = improvements(false);
  const auto sizes = osu_message_sizes(64, bench_max_msg(256 * 1024));
  double sum_with = 0.0, sum_without = 0.0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    sum_with += with_c[i];
    sum_without += without_c[i];
    t.add_row({TextTable::bytes(sizes[i]), TextTable::num(with_c[i], 1),
               TextTable::num(without_c[i], 1)});
  }
  std::printf("%s", t.render().c_str());
  const auto n = static_cast<double>(sizes.size());
  snapshot.add_metric("mean_improvement_contention", sum_with / n, "percent",
                      /*higher_is_better=*/true);
  snapshot.add_metric("mean_improvement_no_contention", sum_without / n,
                      "percent", /*higher_is_better=*/true);
  snapshot.dump();
  return 0;
}
