// Ablation: why does the general-purpose mapper lose on recursive doubling?
// A structure-only recursive bipartitioning (our default, matching the poor
// Scotch mappings the paper measures) cannot distinguish the heavy
// last-stage hypercube dimension from the light first-stage one; giving the
// mapper the per-stage volume weights recovers most of the quality — at the
// cost of exactly the pattern knowledge the fine-tuned heuristics encode.

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "common/table.hpp"
#include "mapping/comparators.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/mapcost.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;

  BenchWorld world(kPaperNodes);
  const int p = kPaperProcs;
  const auto& dist = world.framework.distances();
  const auto pattern = mapping::build_pattern_graph(
      mapping::Pattern::RecursiveDoubling, p);
  const auto comm = world.comm(p, simmpi::LayoutSpec{});
  const std::vector<int> initial(comm.rank_to_core().begin(),
                                 comm.rank_to_core().end());

  std::printf(
      "Ablation — Scotch-like mapper with/without edge-volume weights,\n"
      "recursive-doubling pattern, %d processes, block-bunch initial\n\n",
      p);

  TextTable t;
  t.set_header({"mapper", "weighted cost"});
  t.add_row({"initial mapping",
             TextTable::num(mapping::mapping_cost(pattern, initial, dist), 0)});

  struct Variant {
    const char* name;
    std::vector<int> result;
  };
  Rng r1(1), r2(1), r3(1);
  mapping::ScotchLikeMapper structural(mapping::Pattern::RecursiveDoubling,
                                       /*use_edge_weights=*/false);
  mapping::ScotchLikeMapper weighted(mapping::Pattern::RecursiveDoubling,
                                     /*use_edge_weights=*/true);
  mapping::RdmhMapper rdmh;
  const Variant variants[] = {
      {"scotch-like, structure only (default)",
       structural.map(initial, dist, r1)},
      {"scotch-like, volume weighted", weighted.map(initial, dist, r2)},
      {"RDMH (fine-tuned heuristic)", rdmh.map(initial, dist, r3)},
  };
  for (const auto& v : variants) {
    t.add_row({v.name, TextTable::num(
                   mapping::mapping_cost(pattern, v.result, dist), 0)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
