// Ablation: BBMH tree-traversal order (§V-A3 discusses the alternatives).
// The paper picks the DFT variation that visits smaller subtrees first; this
// bench contrasts it with largest-subtree-first (the [10]-style choice) and
// plain level order, on both the weighted-cost metric and the simulated
// broadcast latency.

#include <cstdio>

#include "bench/fixtures.hpp"
#include "collectives/gather_bcast.hpp"
#include "common/table.hpp"
#include "mapping/comparators.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/mapcost.hpp"
#include "simmpi/engine.hpp"
#include "topology/distance.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;

  BenchWorld world(kPaperNodes);
  const int p = kPaperProcs;
  const auto& dist = world.framework.distances();
  const auto pattern =
      mapping::build_pattern_graph(mapping::Pattern::BinomialBcast, p);
  const simmpi::LayoutSpec spec{simmpi::NodeOrder::Cyclic,
                                simmpi::SocketOrder::Scatter};
  const auto comm = world.comm(p, spec);
  const std::vector<int> initial(comm.rank_to_core().begin(),
                                 comm.rank_to_core().end());

  struct Variant {
    const char* name;
    mapping::BbmhTraversal order;
  };
  const Variant variants[] = {
      {"small-subtree-first (paper)",
       mapping::BbmhTraversal::SmallSubtreeFirst},
      {"large-subtree-first", mapping::BbmhTraversal::LargeSubtreeFirst},
      {"level-order (BFT)", mapping::BbmhTraversal::LevelOrder},
  };

  std::printf(
      "Ablation — BBMH traversal order, binomial bcast, %d processes,\n"
      "initial mapping %s\n\n",
      p, simmpi::to_string(spec).c_str());

  TextTable t;
  t.set_header({"traversal", "weighted cost", "bcast 64KB (us)"});
  {
    // Baseline: the unmodified initial mapping.
    simmpi::Engine eng(comm, simmpi::CostConfig{}, simmpi::ExecMode::Timed,
                       64 * 1024, 1);
    const Usec lat = collectives::run_bcast(eng, collectives::TreeAlgo::Binomial);
    t.add_row({"initial mapping", TextTable::num(
                   mapping::mapping_cost(pattern, initial, dist), 0),
               TextTable::num(lat, 1)});
  }
  for (const auto& v : variants) {
    Rng rng(1);
    mapping::BbmhMapper mapper(v.order);
    const auto result = mapper.map(initial, dist, rng);
    const auto reordered = comm.reordered(result);
    simmpi::Engine eng(reordered, simmpi::CostConfig{},
                       simmpi::ExecMode::Timed, 64 * 1024, 1);
    const Usec lat = collectives::run_bcast(eng, collectives::TreeAlgo::Binomial);
    t.add_row({v.name,
               TextTable::num(mapping::mapping_cost(pattern, result, dist), 0),
               TextTable::num(lat, 1)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
