// Extension bench (§VII future work): Bruck allgather with the BKMH
// heuristic on non-power-of-two communicators, and RDMH-reordered
// MPI_Allreduce (recursive doubling and Rabenseifner).

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "collectives/allgather.hpp"
#include "collectives/allreduce.hpp"
#include "common/table.hpp"
#include "common/permutation.hpp"
#include "simmpi/engine.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;

  // --- Bruck + BKMH at a non-power-of-two size --------------------------
  {
    BenchWorld world(375);  // 3000 ranks: Bruck territory
    const int p = 3000;
    const simmpi::LayoutSpec cyclic{simmpi::NodeOrder::Cyclic,
                                    simmpi::SocketOrder::Bunch};
    const auto comm = world.comm(p, cyclic);
    const auto rc = world.framework.reorder(comm, mapping::Pattern::Bruck);

    std::printf(
        "Extension — Bruck allgather + BKMH, %d processes (non-2^k),\n"
        "cyclic-bunch initial mapping\n\n",
        p);
    TextTable t;
    t.set_header({"msg", "default(us)", "BKMH(us)", "impr %"});
    for (Bytes msg : osu_message_sizes(64, 16 * 1024)) {
      simmpi::Engine base(comm, simmpi::CostConfig{},
                          simmpi::ExecMode::Timed, msg, p);
      const Usec d = collectives::run_allgather(
          base, collectives::AllgatherOptions{collectives::AllgatherAlgo::Bruck,
                                              collectives::OrderFix::None});
      simmpi::Engine reord(rc.comm, simmpi::CostConfig{},
                           simmpi::ExecMode::Timed, msg, p);
      const Usec h = collectives::run_allgather(
          reord,
          collectives::AllgatherOptions{collectives::AllgatherAlgo::Bruck,
                                        collectives::OrderFix::None},
          rc.oldrank);
      t.add_row({TextTable::bytes(msg), TextTable::num(d, 1),
                 TextTable::num(h, 1),
                 TextTable::num(improvement_percent(d, h), 1)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  // --- Allreduce + RDMH ---------------------------------------------------
  {
    BenchWorld world(kPaperNodes);
    const int p = kPaperProcs;
    // Block-bunch: the placement batch schedulers produce by default, and a
    // poor match for recursive doubling (no MVAPICH-internal reorder exists
    // for the raw allreduce path).
    const auto comm = world.comm(p, simmpi::LayoutSpec{});
    const auto rc =
        world.framework.reorder(comm, mapping::Pattern::RecursiveDoubling);

    std::printf(
        "Extension — MPI_Allreduce + RDMH, %d processes, block-bunch\n\n",
        p);
    TextTable t;
    t.set_header({"msg", "RD default(us)", "RD+RDMH(us)", "impr %",
                  "Rabenseifner+RDMH(us)"});
    for (Bytes msg : {Bytes(1024), Bytes(16 * 1024), Bytes(256 * 1024),
                      Bytes(1 << 20)}) {
      simmpi::Engine base(comm, simmpi::CostConfig{},
                          simmpi::ExecMode::Timed, msg, 1);
      const Usec d = collectives::run_allreduce_rd(base);
      simmpi::Engine reord(rc.comm, simmpi::CostConfig{},
                           simmpi::ExecMode::Timed, msg, 1);
      const Usec h = collectives::run_allreduce_rd(reord);
      simmpi::Engine rab(rc.comm, simmpi::CostConfig{},
                         simmpi::ExecMode::Timed, msg / p + 1, p);
      const Usec r = collectives::run_allreduce_rabenseifner(rab);
      t.add_row({TextTable::bytes(msg), TextTable::num(d, 1),
                 TextTable::num(h, 1),
                 TextTable::num(improvement_percent(d, h), 1),
                 TextTable::num(r, 1)});
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "Note: full-vector RD allreduce exchanges the same volume in every\n"
        "stage and is bound by each node's host link, so any mapping with\n"
        "log2(cores/node) intra-node stages is equivalent — reordering\n"
        "cannot help much.  The bandwidth-optimal Rabenseifner algorithm\n"
        "(reduce-scatter + allgather) is the real large-message win.\n");
  }
  return 0;
}
