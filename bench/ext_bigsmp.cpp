// Extension bench (§VII future work): "evaluate the performance of our
// binomial broadcast and gather heuristics on systems having a more
// complicated intra-node topology with a larger number of cores per node."
//
// Machine: 128 nodes x 32 cores (2 sockets x 4 L3 complexes x 4 cores) =
// 4096 processes, with a faster shared-L3 channel inside each complex.
// Hierarchical allgather, non-linear intra phases, block-scatter initial.

#include <cstdio>

#include "bench/sweep.hpp"
#include "common/table.hpp"
#include "core/topoallgather.hpp"
#include "simmpi/layout.hpp"
#include "topology/fattree.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;
  using collectives::OrderFix;
  using core::MapperKind;

  const topology::NodeShape deep{2, 16, 4};  // 32 cores, 4 complexes/socket
  const topology::Machine machine(
      deep, topology::build_gpc_network(128));
  core::ReorderFramework framework(machine);
  const int p = machine.total_cores();  // 4096

  simmpi::CostConfig cost;
  cost.alpha_shm_complex = 0.25;
  cost.beta_shm_complex_pair = 1.0 / 9000.0;  // shared-L3 fast path

  const simmpi::LayoutSpec scatter{simmpi::NodeOrder::Block,
                                   simmpi::SocketOrder::Scatter};
  const simmpi::Communicator comm(
      machine, simmpi::make_layout(machine, p, scatter));

  std::printf(
      "Extension — binomial heuristics on 32-core nodes (2 sockets x 4 L3\n"
      "complexes x 4 cores), %d processes, hierarchical NL allgather,\n"
      "block-scatter initial mapping\n\n",
      p);

  core::TopoAllgatherConfig def;
  def.mapper = MapperKind::None;
  def.hierarchical = true;
  def.cost = cost;
  core::TopoAllgather base(framework, comm, def);

  auto variant = [&](mapping::Pattern intra) {
    core::TopoAllgatherConfig cfg = def;
    cfg.mapper = MapperKind::Heuristic;
    cfg.fix = OrderFix::InitComm;
    cfg.hier_intra_pattern = intra;
    return core::TopoAllgather(framework, comm, cfg);
  };
  auto bbmh = variant(mapping::Pattern::BinomialBcast);
  auto bgmh = variant(mapping::Pattern::BinomialGather);

  TextTable t;
  t.set_header({"msg", "default(us)", "BBMH intra impr %",
                "BGMH intra impr %"});
  for (Bytes msg : osu_message_sizes(64)) {
    const double d = base.latency(msg);
    t.add_row({TextTable::bytes(msg), TextTable::num(d, 1),
               TextTable::num(improvement_percent(d, bbmh.latency(msg)), 1),
               TextTable::num(improvement_percent(d, bgmh.latency(msg)), 1)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nWith four complexes per socket there is more locality for the\n"
      "intra-node heuristics to exploit than on the paper's 8-core nodes\n"
      "(the paper's own conjecture in SVII).\n");
  return 0;
}
