// Fig 2 regeneration: the GPC fat-tree of the SciNet cluster — 32 leaf
// switches x 30 nodes each, two core switches built from 18 line + 9 spine
// switches, 3 uplink cables from every leaf to each core switch (5:1
// blocking) — plus the resulting hop-distance histogram.

#include <cstdio>
#include <map>

#include "common/table.hpp"
#include "topology/fattree.hpp"
#include "topology/machine.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::topology;

  const Machine m = Machine::gpc(960);  // the full 32x30-node tree
  std::printf("Fig 2 — GPC network topology\n%s\n\n", m.describe().c_str());

  // Hop-distance histogram over node pairs (the structure the distance
  // matrix and the congestion model see).
  std::map<int, long long> histogram;
  for (NodeId a = 0; a < m.num_nodes(); ++a)
    for (NodeId b = 0; b < m.num_nodes(); ++b)
      if (a != b) ++histogram[m.router().hops(a, b)];

  tarr::TextTable t;
  t.set_header({"switch hops", "node pairs", "locality"});
  for (const auto& [hops, count] : histogram) {
    const char* what = hops == 2   ? "same leaf"
                       : hops == 4 ? "same line-switch group"
                                   : "across spine switches";
    t.add_row({std::to_string(hops), std::to_string(count), what});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("Blocking ratio at each leaf: 30 node links / 6 uplink cables "
              "= 5:1 (as in the paper)\n");
  return 0;
}
