// Extension bench: stage-synchronous vs asynchronous (LogGP-flavored)
// execution models.  The stage model is exact for synchronized patterns
// and carries the contention story; the async model exposes the pipelining
// that stage synchronization rounds up.  Comparing both quantifies the
// stage-model approximation per algorithm.

#include <cstdio>

#include "bench/fixtures.hpp"
#include "bench/sweep.hpp"
#include "collectives/allgather.hpp"
#include "common/table.hpp"
#include "simmpi/async.hpp"
#include "simmpi/engine.hpp"

int main() {
  using namespace tarr;
  using namespace tarr::bench;

  BenchWorld world(64);
  const int p = 512;
  const auto comm = world.comm(p, simmpi::LayoutSpec{});

  std::printf(
      "Extension — execution-model comparison, %d processes, block-bunch\n"
      "(stage-synchronous without contention vs asynchronous per-rank\n"
      "clocks; both without link sharing, isolating the synchronization\n"
      "assumption)\n\n",
      p);

  simmpi::CostConfig no_contention;
  no_contention.model_contention = false;

  TextTable t;
  t.set_header({"algorithm", "msg", "stage-sync(us)", "async(us)",
                "pipelining headroom %"});
  for (Bytes msg : {Bytes(4 * 1024), Bytes(64 * 1024)}) {
    {
      simmpi::Engine stage(comm, no_contention, simmpi::ExecMode::Timed,
                           msg, p);
      collectives::run_allgather(
          stage,
          collectives::AllgatherOptions{collectives::AllgatherAlgo::Ring,
                                        collectives::OrderFix::None});
      simmpi::AsyncEngine async(comm, no_contention);
      const Usec a = simmpi::run_allgather_ring_async(async, msg);
      t.add_row({"ring", TextTable::bytes(msg),
                 TextTable::num(stage.total(), 1), TextTable::num(a, 1),
                 TextTable::num(improvement_percent(stage.total(), a), 1)});
    }
    {
      simmpi::Engine stage(comm, no_contention, simmpi::ExecMode::Timed,
                           msg, p);
      collectives::run_allgather(
          stage,
          collectives::AllgatherOptions{
              collectives::AllgatherAlgo::RecursiveDoubling,
              collectives::OrderFix::None});
      simmpi::AsyncEngine async(comm, no_contention);
      const Usec a = simmpi::run_allgather_rd_async(async, msg);
      t.add_row({"recursive-doubling", TextTable::bytes(msg),
                 TextTable::num(stage.total(), 1), TextTable::num(a, 1),
                 TextTable::num(improvement_percent(stage.total(), a), 1)});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nThe ring leaves pipelining headroom the stage model rounds up;\n"
      "recursive doubling is globally synchronized, so the two models\n"
      "agree there (small negative = sender-overhead term).\n");
  return 0;
}
