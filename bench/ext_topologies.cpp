// Extension bench: does rank reordering generalize beyond the paper's
// fat-tree?  The heuristics consume only a distance matrix, so the same
// code runs unchanged on a 3D torus and a dragonfly.  Same experiment on
// each network: 512 processes (64 nodes x 8 cores), cyclic-bunch initial
// mapping, Hrstc+initComm vs the default library.

#include <cstdio>

#include "bench/sweep.hpp"
#include "common/table.hpp"
#include "core/topoallgather.hpp"
#include "simmpi/layout.hpp"
#include "topology/direct.hpp"
#include "topology/fattree.hpp"

namespace {

using namespace tarr;
using namespace tarr::bench;

void run_case(const char* name, topology::SwitchGraph net) {
  const topology::Machine machine(topology::NodeShape{}, std::move(net));
  core::ReorderFramework framework(machine);
  const int p = machine.total_cores();
  const simmpi::LayoutSpec cyclic{simmpi::NodeOrder::Cyclic,
                                  simmpi::SocketOrder::Bunch};
  const simmpi::Communicator comm(machine,
                                  simmpi::make_layout(machine, p, cyclic));

  core::TopoAllgatherConfig def;
  def.mapper = core::MapperKind::None;
  core::TopoAllgather base(framework, comm, def);
  core::TopoAllgatherConfig heu;
  heu.mapper = core::MapperKind::Heuristic;
  heu.fix = collectives::OrderFix::InitComm;
  core::TopoAllgather h(framework, comm, heu);

  TextTable t;
  t.set_header({"msg", "default(us)", "Hrstc impr %"});
  for (Bytes msg :
       {Bytes(256), Bytes(4096), Bytes(64 * 1024), Bytes(256 * 1024)}) {
    const double d = base.latency(msg);
    t.add_row({TextTable::bytes(msg), TextTable::num(d, 1),
               TextTable::num(improvement_percent(d, h.latency(msg)), 1)});
  }
  std::printf("%s (%d nodes, %d processes)\n%s\n", name, machine.num_nodes(),
              p, t.render().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Extension — the same reordering stack across network topologies,\n"
      "cyclic-bunch initial mapping, Hrstc+initComm\n\n");
  run_case("GPC blocking fat-tree", topology::build_gpc_network(64));
  run_case("3D torus 4x4x4", topology::build_torus_network(4, 4, 4));
  {
    topology::DragonflyConfig cfg;
    cfg.groups = 8;
    cfg.routers_per_group = 4;
    cfg.hosts_per_router = 2;
    run_case("dragonfly g=8 a=4 p=2",
             topology::build_dragonfly_network(64, cfg));
  }
  std::printf(
      "Finding: the ring heuristic's large-message gains carry over to all\n"
      "three networks (78-93%%).  For small messages on the torus, RDMH's\n"
      "greedy closest-core packing loses to the cyclic placement: a torus\n"
      "rewards dimension-aligned (not compact) placements, so pattern\n"
      "heuristics tuned on tree distances are not automatically optimal on\n"
      "direct networks — an adaptive fallback (ext_adaptive) covers this.\n");
  return 0;
}
