#!/usr/bin/env python3
"""Determinism lint for the tarr sources.

The repo's observability contract (docs/OBSERVABILITY.md) promises
byte-identical traces, reports, and counterexamples across same-seed runs.
This lint bans the C++ constructs that silently break that promise:

  unordered-iteration   range-for / begin() iteration over a
                        std::unordered_map / std::unordered_set — hash-table
                        order leaks into whatever the loop feeds
  unordered-container   declaration of an unordered container at all; use
                        std::map / std::set (or sort before iterating and
                        allowlist the declaration)
  std-rand              std::rand / srand — a hidden global RNG; use
                        tarr::Rng with an explicit seed
  pointer-keyed         std::map / std::set keyed on a pointer type — the
                        iteration order is the allocator's
  locale                setlocale / std::locale / imbue — number formatting
                        becomes environment-dependent

Suppressions, either of:
  * inline, on the offending line:  // lint:allow(determinism): <why>
  * an entry in tools/lint_determinism_allow.txt:
        <path-relative-to-repo>:<rule>  # <why>

Usage: tools/lint_determinism.py [--root DIR] [FILE...]
Lints src/ by default; exits 1 if any unsuppressed finding remains.
"""

import argparse
import re
import sys
from pathlib import Path

RULES = {
    "unordered-iteration": "iteration order of an unordered container is "
    "hash-layout-dependent",
    "unordered-container": "prefer std::map/std::set, or sort before "
    "iterating and allowlist this declaration",
    "std-rand": "std::rand is a hidden global RNG; use tarr::Rng with an "
    "explicit seed",
    "pointer-keyed": "pointer-keyed ordering depends on the allocator",
    "locale": "locale-dependent formatting varies with the environment",
}

INLINE_ALLOW = re.compile(r"//\s*lint:allow\(determinism\)")
UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s*"
    r"&?\s*(\w+)\s*[;={(]"
)
UNORDERED_TYPE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*?:\s*\(?\s*(\w+)[\s.)]*\)")
BEGIN_ITER = re.compile(r"\b(\w+)\s*\.\s*(?:begin|cbegin)\s*\(")
STD_RAND = re.compile(r"\b(?:std::)?s?rand\s*\(")
POINTER_KEYED = re.compile(r"\bstd::(?:map|set|multimap|multiset)\s*<\s*"
                           r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*")
LOCALE = re.compile(r"\bsetlocale\s*\(|\bstd::locale\b|\.\s*imbue\s*\(")


def strip_comments_and_strings(line: str) -> str:
    """Blank out string/char literals and // comments so the patterns only
    see code (crude but deterministic; block comments are rare in-tree)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            i += 1
            out.append(quote)
            continue
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(path: Path):
    """Yield (lineno, rule, detail) findings for one file."""
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        yield 0, "unreadable", str(e)
        return
    unordered_vars = set()
    for m in UNORDERED_DECL.finditer(text):
        unordered_vars.add(m.group(1))
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if INLINE_ALLOW.search(raw):
            continue
        line = strip_comments_and_strings(raw)
        if UNORDERED_TYPE.search(line) and "#include" not in line:
            yield lineno, "unordered-container", line.strip()
        for m in RANGE_FOR.finditer(line):
            if m.group(1) in unordered_vars:
                yield lineno, "unordered-iteration", line.strip()
        for m in BEGIN_ITER.finditer(line):
            if m.group(1) in unordered_vars:
                yield lineno, "unordered-iteration", line.strip()
        if STD_RAND.search(line):
            yield lineno, "std-rand", line.strip()
        if POINTER_KEYED.search(line):
            yield lineno, "pointer-keyed", line.strip()
        if LOCALE.search(line):
            yield lineno, "locale", line.strip()


def load_allowlist(repo_root: Path):
    allow = set()
    allow_file = repo_root / "tools" / "lint_determinism_allow.txt"
    if not allow_file.exists():
        return allow
    for raw in allow_file.read_text(encoding="utf-8").splitlines():
        entry = raw.split("#", 1)[0].strip()
        if not entry:
            continue
        path, _, rule = entry.rpartition(":")
        allow.add((path, rule))
    return allow


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="*", type=Path,
                    help="files to lint (default: all of --root)")
    ap.add_argument("--root", type=Path, default=None,
                    help="directory to lint recursively "
                         "(default: src/, bench/ and examples/)")
    args = ap.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    files = args.files
    if not files:
        # Default scope covers everything that feeds byte-identity-gated
        # artifacts: the library, the bench snapshot writers, and the CLIs.
        roots = ([args.root] if args.root is not None else
                 [repo_root / "src", repo_root / "bench",
                  repo_root / "examples"])
        files = []
        for root in roots:
            files += sorted(root.rglob("*.cpp")) + sorted(root.rglob("*.hpp"))

    allow = load_allowlist(repo_root)
    findings = []
    for path in files:
        try:
            rel = str(path.resolve().relative_to(repo_root))
        except ValueError:
            rel = str(path)
        for lineno, rule, detail in lint_file(path):
            if (rel, rule) in allow:
                continue
            findings.append((rel, lineno, rule, detail))

    findings.sort()
    for rel, lineno, rule, detail in findings:
        print(f"{rel}:{lineno}: [{rule}] {detail}")
        print(f"    {RULES.get(rule, '')}")
    if findings:
        print(f"\n{len(findings)} determinism finding(s). Fix them, add an "
              "inline '// lint:allow(determinism): <why>' on the line, or "
              "justify an entry in tools/lint_determinism_allow.txt.")
        return 1
    print(f"determinism lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
